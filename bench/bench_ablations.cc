// Ablations for the design choices DESIGN.md calls out:
//
//   A1  RA simplification in the lazy pipeline (on/off): the rewriter is
//       what turns Example 2.1(b)-style queries into cheap or empty plans.
//   A2  Operator clustering (Algorithm HQL-2's reason to exist): the same
//       sigma-over-product evaluated node-at-a-time (filter1) vs clustered
//       into a theta join (filter2 / EvalRa).
//   A3  Streaming delta application (DeltaScan) vs materialize-then-apply
//       for select-when.

#include <benchmark/benchmark.h>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "eval/delta_ops.h"
#include "eval/filter1.h"
#include "eval/filter2.h"
#include "eval/ra_eval.h"
#include "hql/enf.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "opt/planner.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

// ---------------------------------------------------------------------------
// A1: lazy evaluation with and without the RA simplifier.
// ---------------------------------------------------------------------------

QueryPtr SimplifiableQuery() {
  // (R join (S - sigma[A<60%](S))) when {del(S, sigma[A<60%](S))}:
  // after reduction the rewriter merges the double difference into one
  // selection; without it the query evaluates the S-expressions twice.
  QueryPtr s_trimmed = Diff(Rel("S"), Sel(Lt(Col(0), Int(12000)), Rel("S")));
  QueryPtr body = Join(Eq(Col(0), Col(2)), Rel("R"), s_trimmed);
  return Query::When(
      body, Upd(Del("S", Sel(Lt(Col(0), Int(12000)), Rel("S")))));
}

void BM_LazyWithSimplify(benchmark::State& state) {
  Database db = MakeRS(31, 10000, 20000);
  PlannerOptions options;
  options.simplify = true;
  for (auto _ : state) {
    Relation out = Unwrap(
        Execute(SimplifiableQuery(), db, db.schema(), Strategy::kLazy,
                options));
    benchmark::DoNotOptimize(out);
  }
}

void BM_LazyWithoutSimplify(benchmark::State& state) {
  Database db = MakeRS(31, 10000, 20000);
  PlannerOptions options;
  options.simplify = false;
  for (auto _ : state) {
    Relation out = Unwrap(
        Execute(SimplifiableQuery(), db, db.schema(), Strategy::kLazy,
                options));
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_LazyWithSimplify)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LazyWithoutSimplify)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A2: clustering sigma over product (the filter1 vs filter2 distinction on
// a pure-RA region).
// ---------------------------------------------------------------------------

void BM_SelectOverProductNodeAtATime(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Database db = MakeRS(37, rows, static_cast<int64_t>(rows) * 2);
  QueryPtr q = Sel(Eq(Col(0), Col(2)), X(Rel("R"), Rel("S")));
  for (auto _ : state) {
    // Algorithm HQL-1 materializes the full product, then filters.
    Relation out = Unwrap(RunFilter1(q, db));
    benchmark::DoNotOptimize(out);
  }
}

void BM_SelectOverProductClustered(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Database db = MakeRS(37, rows, static_cast<int64_t>(rows) * 2);
  QueryPtr q = Sel(Eq(Col(0), Col(2)), X(Rel("R"), Rel("S")));
  for (auto _ : state) {
    // Algorithm HQL-2's eval_filter_x clusters it into a hash join.
    Relation out = Unwrap(RunFilter2(q, db, db.schema()));
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_SelectOverProductNodeAtATime)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectOverProductClustered)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A3: streaming select-when vs materialize-then-filter.
// ---------------------------------------------------------------------------

void BM_SelectWhenStreaming(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Rng rng(41);
  Relation base = GenRelation(&rng, rows, 2,
                              static_cast<int64_t>(rows) * 2);
  DeltaPair delta(SampleFraction(&rng, base, 0.02),
                  GenRelation(&rng, rows / 50, 2,
                              static_cast<int64_t>(rows) * 2));
  ScalarExprPtr pred = Ge(Col(0), Int(static_cast<int64_t>(rows)));
  for (auto _ : state) {
    Relation out = SelectWhen(base, &delta, *pred);
    benchmark::DoNotOptimize(out);
  }
}

void BM_SelectWhenMaterialized(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Rng rng(41);
  Relation base = GenRelation(&rng, rows, 2,
                              static_cast<int64_t>(rows) * 2);
  DeltaPair delta(SampleFraction(&rng, base, 0.02),
                  GenRelation(&rng, rows / 50, 2,
                              static_cast<int64_t>(rows) * 2));
  ScalarExprPtr pred = Ge(Col(0), Int(static_cast<int64_t>(rows)));
  for (auto _ : state) {
    Relation applied = base.DifferenceWith(delta.del).UnionWith(delta.ins);
    Relation out = FilterRelation(applied, *pred);
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_SelectWhenStreaming)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectWhenMaterialized)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(ablations)
