// Validates the JSON files the benchmarks emit in --json mode, so the
// bench-smoke CI job fails on malformed or truncated output instead of
// archiving it silently. Two formats are accepted:
//
//   * BENCH_<name>.json       — google benchmark's --benchmark_out format:
//                               an object with a "context" object and a
//                               "benchmarks" array whose entries carry a
//                               "name" and a numeric "real_time".
//   * BENCH_<name>_stats.json — an ExecStats::ToJson sidecar: schema
//                               marker "hql-exec-stats/v1", the counter
//                               fields as numbers, a "route" string and a
//                               "spans" array.
//
// Usage: check_bench_json FILE...   (exits non-zero on the first failure)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace hql {
namespace {

constexpr const char* kStatsCounters[] = {
    "memo_hits",
    "memo_misses",
    "views_created",
    "view_consolidations",
    "view_tuples_shared",
    "view_tuples_copied",
    "indexes_built",
    "indexes_shared",
    "index_probes",
    "index_tuples_skipped",
    "governor_deadline_trips",
    "governor_tuple_trips",
    "governor_rewrite_trips",
    "governor_cancellations",
    "governor_lazy_fallbacks",
    "governor_index_fallbacks",
    "governor_max_tuples_charged",
    "governor_max_rewrite_nodes_charged",
    "columnar_batches_built",
    "columnar_batches_reused",
    "columnar_morsels_dispatched",
    "columnar_rows_vectorized",
    "columnar_rows_fallback",
    "columnar_agg_rows_vectorized",
    "columnar_agg_groups",
    "columnar_when_routed",
    "incremental_results_patched",
    "incremental_edits_propagated",
    "incremental_fallbacks",
};

Status CheckStatsSidecar(const JsonPtr& root) {
  for (const char* key : kStatsCounters) {
    JsonPtr field = root->Get(key);
    if (field == nullptr || !field->is_number()) {
      return Status::InvalidArgument(std::string("stats sidecar: missing or "
                                                 "non-numeric counter \"") +
                                     key + "\"");
    }
    if (field->number() < 0) {
      return Status::InvalidArgument(std::string("stats sidecar: negative "
                                                 "counter \"") +
                                     key + "\"");
    }
  }
  JsonPtr route = root->Get("route");
  if (route == nullptr || !route->is_string()) {
    return Status::InvalidArgument("stats sidecar: missing \"route\" string");
  }
  JsonPtr spans = root->Get("spans");
  if (spans == nullptr || !spans->is_array()) {
    return Status::InvalidArgument("stats sidecar: missing \"spans\" array");
  }
  for (const JsonPtr& span : spans->items()) {
    if (!span->is_object() || span->Get("op") == nullptr ||
        !span->Get("op")->is_string() || span->Get("micros") == nullptr ||
        !span->Get("micros")->is_number()) {
      return Status::InvalidArgument(
          "stats sidecar: span without string \"op\" and numeric \"micros\"");
    }
  }
  return Status::OK();
}

Status CheckBenchmarkReport(const JsonPtr& root) {
  JsonPtr context = root->Get("context");
  if (context == nullptr || !context->is_object()) {
    return Status::InvalidArgument(
        "benchmark report: missing \"context\" object");
  }
  JsonPtr benchmarks = root->Get("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Status::InvalidArgument(
        "benchmark report: missing \"benchmarks\" array");
  }
  if (benchmarks->items().empty()) {
    return Status::InvalidArgument(
        "benchmark report: \"benchmarks\" array is empty — the run "
        "produced no measurements");
  }
  for (const JsonPtr& row : benchmarks->items()) {
    if (!row->is_object() || row->Get("name") == nullptr ||
        !row->Get("name")->is_string()) {
      return Status::InvalidArgument(
          "benchmark report: entry without a string \"name\"");
    }
    // Aggregate rows report e.g. real_time too; error rows carry
    // "error_occurred" instead and are accepted (the smoke job only
    // asserts well-formedness, not success of every row).
    if (row->Get("real_time") == nullptr &&
        row->Get("error_occurred") == nullptr) {
      return Status::InvalidArgument(
          "benchmark report: entry \"" + row->Get("name")->string_value() +
          "\" has neither \"real_time\" nor \"error_occurred\"");
    }
  }
  return Status::OK();
}

Status CheckFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<JsonPtr> parsed = ParseJson(buf.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().ToString());
  }
  const JsonPtr& root = parsed.value();
  if (!root->is_object()) {
    return Status::InvalidArgument(path + ": top level is not an object");
  }
  JsonPtr schema = root->Get("schema");
  Status status =
      schema != nullptr && schema->is_string() &&
              schema->string_value() == "hql-exec-stats/v1"
          ? CheckStatsSidecar(root)
          : CheckBenchmarkReport(root);
  if (!status.ok()) {
    return Status::InvalidArgument(path + ": " + status.ToString());
  }
  return Status::OK();
}

}  // namespace
}  // namespace hql

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    hql::Status status = hql::CheckFile(argv[i]);
    if (!status.ok()) {
      std::fprintf(stderr, "check_bench_json: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("ok: %s\n", argv[i]);
  }
  return 0;
}
