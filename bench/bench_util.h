#ifndef HQL_BENCH_BENCH_UTIL_H_
#define HQL_BENCH_BENCH_UTIL_H_

// Shared setup for the experiment benchmarks (see DESIGN.md section 3).
//
// Every benchmark main uses HQL_BENCH_MAIN(<name>), which accepts a
// `--json` flag: when present, the run also writes BENCH_<name>.json
// (google benchmark's JSON format — per-benchmark name, args, real/cpu
// time in ns, and all user counters such as cache hit rates) plus
// BENCH_<name>_stats.json (the ambient ExecContext's ExecStats::ToJson,
// schema "hql-exec-stats/v1" — the run's view/index/memo/governor
// counters), so the perf trajectory is machine-readable across PRs. Both
// files are validated by bench/check_bench_json in the bench-smoke CI job.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "workload/generators.h"

namespace hql::bench {

/// The standard two-relation scenario of the paper's examples: R and S of
/// arity 2 with `rows` tuples each; column 0 ("A") is drawn from
/// [0, key_domain).
inline Database MakeRS(uint64_t seed, size_t rows, int64_t key_domain) {
  Schema schema;
  HQL_CHECK(schema.AddRelation("R", 2).ok());
  HQL_CHECK(schema.AddRelation("S", 2).ok());
  Rng rng(seed);
  Database db(schema);
  HQL_CHECK(db.Set("R", GenRelation(&rng, rows, 2, key_domain)).ok());
  HQL_CHECK(db.Set("S", GenRelation(&rng, rows, 2, key_domain)).ok());
  return db;
}

/// Unwraps a Result in benchmark code (aborts on error — a benchmark that
/// cannot evaluate its query is a bug).
template <typename T>
T Unwrap(hql::Result<T> result) {
  HQL_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

/// Removes a literal "--json" from argv (benchmark::Initialize rejects
/// flags it does not know); returns whether it was present.
inline bool ExtractJsonFlag(int* argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

/// Shared main body: console output always; `--json` additionally writes
/// BENCH_<name>.json in the working directory. Implemented by expanding
/// `--json` into the library's own --benchmark_out flags, so console and
/// file reporting compose the way google benchmark expects.
inline int RunBenchmarks(const char* name, int argc, char** argv) {
  bool json = ExtractJsonFlag(&argc, argv);
  std::string out_flag =
      std::string("--benchmark_out=BENCH_") + name + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (json) {
    // The run's execution-stats sidecar. Benchmarks that do not install
    // their own ExecContext charge the ambient (process-default) context,
    // so this captures the whole run's counters.
    std::ofstream stats_out(std::string("BENCH_") + name + "_stats.json");
    stats_out << AmbientExecContext().Snapshot().ToJson() << "\n";
  }
  return 0;
}

}  // namespace hql::bench

/// Drop-in replacement for BENCHMARK_MAIN() adding the --json mode.
#define HQL_BENCH_MAIN(name)                               \
  int main(int argc, char** argv) {                        \
    return ::hql::bench::RunBenchmarks(#name, argc, argv); \
  }

#endif  // HQL_BENCH_BENCH_UTIL_H_
