#ifndef HQL_BENCH_BENCH_UTIL_H_
#define HQL_BENCH_BENCH_UTIL_H_

// Shared setup for the experiment benchmarks (see DESIGN.md section 3).

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "workload/generators.h"

namespace hql::bench {

/// The standard two-relation scenario of the paper's examples: R and S of
/// arity 2 with `rows` tuples each; column 0 ("A") is drawn from
/// [0, key_domain).
inline Database MakeRS(uint64_t seed, size_t rows, int64_t key_domain) {
  Schema schema;
  HQL_CHECK(schema.AddRelation("R", 2).ok());
  HQL_CHECK(schema.AddRelation("S", 2).ok());
  Rng rng(seed);
  Database db(schema);
  HQL_CHECK(db.Set("R", GenRelation(&rng, rows, 2, key_domain)).ok());
  HQL_CHECK(db.Set("S", GenRelation(&rng, rows, 2, key_domain)).ok());
  return db;
}

/// Unwraps a Result in benchmark code (aborts on error — a benchmark that
/// cannot evaluate its query is a bug).
template <typename T>
T Unwrap(hql::Result<T> result) {
  HQL_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace hql::bench

#endif  // HQL_BENCH_BENCH_UTIL_H_
