// E2 — Example 2.2, families of hypothetical queries.
//
// Paper claim: when many queries run against the same hypothetical state,
// precomputing the composition of the state's substitutions — and, under an
// eager strategy, materializing it once — amortizes the work across the
// family. The naive approach re-derives (and re-materializes) the nested
// states for every member.
//
// Rows: Naive/<rows>/<family> vs ComposedXsub/<rows>/<family> vs
// ComposedLazy/<rows>/<family>.

#include <benchmark/benchmark.h>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "eval/direct.h"
#include "eval/filter1.h"
#include "eval/ra_eval.h"
#include "eval/xsub.h"
#include "hql/enf.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "hql/subst.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

int64_t KeyDomain(size_t rows) { return static_cast<int64_t>(rows) * 2; }

// The Example 2.2 state: (. when {ins(R, sigma[A>=30%](S))})
//                        (. when {del(S, sigma[A<60%](S))}).
HypoExprPtr InnerState(size_t rows) {
  return Upd(Ins("R", Sel(Ge(Col(0), Int(KeyDomain(rows) * 3 / 10)),
                          Rel("S"))));
}
HypoExprPtr OuterState(size_t rows) {
  return Upd(Del("S", Sel(Lt(Col(0), Int(KeyDomain(rows) * 6 / 10)),
                          Rel("S"))));
}

// Cheap family member: a selective window over R.
QueryPtr FamilyQuery(int i, size_t rows) {
  int64_t window = KeyDomain(rows) / 16;
  int64_t lo = (static_cast<int64_t>(i) * 53) % KeyDomain(rows);
  return Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + window))),
             U(Rel("R"), Rel("S")));
}

// Naive: every family member carries the nested when-structure; filter1
// re-materializes both states per query.
void BM_Naive(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int family = static_cast<int>(state.range(1));
  Database db = MakeRS(11, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  uint64_t total = 0;
  for (auto _ : state) {
    for (int i = 0; i < family; ++i) {
      QueryPtr q =
          Query::When(Query::When(FamilyQuery(i, rows), InnerState(rows)),
                      OuterState(rows));
      QueryPtr enf = Unwrap(ToEnf(q, schema));
      total += Unwrap(RunFilter1(enf, db)).size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

// Composed + eager: compute the composed substitution once, materialize its
// xsub-value once, and filter every family member through it.
void BM_ComposedXsub(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int family = static_cast<int>(state.range(1));
  Database db = MakeRS(11, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  uint64_t total = 0;
  for (auto _ : state) {
    // Outer state applies to the database first (replace-nested-when).
    Substitution composed = Unwrap(
        ReduceHypo(Comp(OuterState(rows), InnerState(rows)), schema));
    XsubValue env;
    for (const auto& [name, query] : composed.bindings()) {
      DatabaseResolver resolver(db);
      env.Bind(name, Unwrap(EvalRa(query, resolver)));
    }
    Filter1Options options;
    options.env = &env;
    for (int i = 0; i < family; ++i) {
      total += Unwrap(RunFilter1(FamilyQuery(i, rows), db, options)).size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

// Composed + lazy: compose and simplify once, then substitute into each
// family member and evaluate pure RA (no materialization at all).
void BM_ComposedLazy(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int family = static_cast<int>(state.range(1));
  Database db = MakeRS(11, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  DatabaseResolver resolver(db);
  uint64_t total = 0;
  for (auto _ : state) {
    Substitution composed = Unwrap(
        ReduceHypo(Comp(OuterState(rows), InnerState(rows)), schema));
    // Algebraic simplification of the bindings (the paper's
    // {sigma[A>=60](S)/S, R u sigma[A>=60](S)/R}).
    Substitution simplified;
    for (const auto& [name, query] : composed.bindings()) {
      simplified.Bind(name, Unwrap(SimplifyRa(query, schema)));
    }
    for (int i = 0; i < family; ++i) {
      QueryPtr q = simplified.Apply(FamilyQuery(i, rows));
      total += Unwrap(EvalRa(q, resolver)).size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {1000, 10000}) {
    for (int64_t family : {1, 8, 64, 256}) {
      b->Args({rows, family});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Naive)->Apply(Args);
BENCHMARK(BM_ComposedXsub)->Apply(Args);
BENCHMARK(BM_ComposedLazy)->Apply(Args);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e2_composition)
