// E3 — Example 2.3, binding removal.
//
// Paper claim: for {ins(R, sigma_p(S)); del(S, sigma_q(R)); ins(T, pi(R))}
// asked of queries that never mention S, the S-slice of the composed
// substitution can be dropped (sub(E, u) = sub(E, u - {t/v}) when v is not
// free in E). Under eager evaluation this skips materializing the S slice
// entirely, so the win grows with |S|.
//
// Rows: WithAllBindings/<s_rows> vs WithBindingRemoval/<s_rows>.

#include <benchmark/benchmark.h>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "eval/filter1.h"
#include "hql/enf.h"
#include "hql/rewrite_when.h"
#include <algorithm>

#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::Unwrap;

Database MakeRST(size_t r_rows, size_t s_rows) {
  Schema schema;
  HQL_CHECK(schema.AddRelation("R", 2).ok());
  HQL_CHECK(schema.AddRelation("S", 2).ok());
  HQL_CHECK(schema.AddRelation("T", 2).ok());
  Rng rng(13);
  Database db(schema);
  int64_t domain = static_cast<int64_t>(std::max(r_rows, s_rows)) * 2;
  HQL_CHECK(db.Set("R", GenRelation(&rng, r_rows, 2, domain)).ok());
  HQL_CHECK(db.Set("S", GenRelation(&rng, s_rows, 2, domain)).ok());
  HQL_CHECK(db.Set("T", GenRelation(&rng, r_rows, 2, domain)).ok());
  return db;
}

// The Example 2.3 update; its slice binds R, S and T.
UpdatePtr Example23Update() {
  return Seq(Ins("R", Sel(Gt(Col(0), Int(20)), Rel("S"))),
             Del("S", Sel(Lt(Col(0), Int(1000000)), Rel("R"))),
             Ins("T", Proj({0, 0}, Rel("R"))));
}

// A query that never mentions S.
QueryPtr BodyWithoutS() {
  return Sel(Ge(Col(0), Int(10)),
             Join(Eq(Col(0), Col(2)), Rel("R"), Rel("T")));
}

void BM_WithAllBindings(benchmark::State& state) {
  const size_t s_rows = static_cast<size_t>(state.range(0));
  Database db = MakeRST(2000, s_rows);
  const Schema& schema = db.schema();
  QueryPtr q = Query::When(BodyWithoutS(), Upd(Example23Update()));
  QueryPtr enf = Unwrap(ToEnf(q, schema));
  uint64_t total = 0;
  for (auto _ : state) {
    total += Unwrap(RunFilter1(enf, db)).size();
  }
  state.counters["bindings"] =
      static_cast<double>(enf->state()->bindings().size());
  state.counters["result_tuples"] = static_cast<double>(total);
}

void BM_WithBindingRemoval(benchmark::State& state) {
  const size_t s_rows = static_cast<size_t>(state.range(0));
  Database db = MakeRST(2000, s_rows);
  const Schema& schema = db.schema();
  QueryPtr q = Query::When(BodyWithoutS(), Upd(Example23Update()));
  QueryPtr enf = Unwrap(ToEnf(q, schema));
  QueryPtr trimmed = equiv::SubstSimplify(enf);
  HQL_CHECK(trimmed != nullptr);
  uint64_t total = 0;
  for (auto _ : state) {
    total += Unwrap(RunFilter1(trimmed, db)).size();
  }
  state.counters["bindings"] =
      static_cast<double>(trimmed->state()->bindings().size());
  state.counters["result_tuples"] = static_cast<double>(total);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t s_rows : {1000, 10000, 50000, 200000}) {
    b->Args({s_rows});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_WithAllBindings)->Apply(Args);
BENCHMARK(BM_WithBindingRemoval)->Apply(Args);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e3_binding_removal)
