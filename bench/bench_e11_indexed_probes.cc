// E11 — Overlay-aware secondary indexes: probes vs scans across a family
// of alternatives.
//
// The index layer's target workload: a 100k-row base relation, eight
// hypothetical alternatives that each insert one tuple, and the same query
// evaluated under every alternative. With indexes off, each alternative
// pays a full scan (select-when / hash-join build); with the advisor on,
// the first alternative funds one index build on the shared base and the
// other seven probe it through their overlays.
//
// Rows (8 alternatives per iteration, 100k-row base):
//   SelectScan       sigma[$0 = k](R) under each alternative, scan kernels.
//   SelectIndexed    the same, advisor-driven index probes.
//   JoinScan         S join[$0 = $2] R under each alternative, hash join.
//   JoinIndexed      the same, probing R's index (shared with the
//                    selection: one index on R.$0 serves both shapes).
//
// Setup asserts bit-identical results between the indexed and scan routes
// for every alternative, so the speedup is never purchased with a wrong
// answer. Counters on the indexed rows report the index layer's own
// accounting for one cold family: indexes_built (expected 1) and
// indexes_shared (expected >= 7), plus probe/skip totals.
// Run with --json to write BENCH_e11_indexed_probes.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "common/exec_context.h"
#include "storage/index.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

constexpr size_t kBaseRows = 100000;
constexpr int64_t kKeyDomain = 200000;
constexpr int kAlternatives = 8;

// Eight singleton-insert alternatives: small deltas on the shared base, the
// regime where the hybrid planner takes the HQL-3 delta route and the
// overlay probe path does its work.
std::vector<QueryPtr> MakeFamily(const QueryPtr& body) {
  std::vector<QueryPtr> family;
  family.reserve(kAlternatives);
  for (int i = 0; i < kAlternatives; ++i) {
    HypoExprPtr state =
        Upd(Ins("R", Single(Row({IntV(kKeyDomain + i), IntV(i)}))));
    family.push_back(When(body, std::move(state)));
  }
  return family;
}

PlannerOptions ScanOptions() { return PlannerOptions(); }

PlannerOptions IndexedOptions(IndexAdvisor* advisor) {
  PlannerOptions options;
  options.index_mode = IndexMode::kAdvisor;
  options.index_advisor = advisor;
  return options;
}

// Evaluates the whole family once; returns the summed result cardinality.
uint64_t EvalFamily(const std::vector<QueryPtr>& family, const Database& db,
                    const PlannerOptions& options) {
  uint64_t total = 0;
  for (const QueryPtr& q : family) {
    Relation out =
        Unwrap(Execute(q, db, db.schema(), Strategy::kHybrid, options));
    total += out.size();
  }
  return total;
}

// One cold pass with a fresh advisor, asserting the indexed route returns
// bit-identical relations to the scan route for every alternative, and
// exporting the index counters the family generated (expected: one build,
// the other seven alternatives sharing it).
void CheckAndExport(benchmark::State& state,
                    const std::vector<QueryPtr>& family, const Database& db) {
  IndexAdvisor advisor(/*build_threshold=*/1);
  PlannerOptions indexed = IndexedOptions(&advisor);
  PlannerOptions scan = ScanOptions();
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  for (const QueryPtr& q : family) {
    Relation with_index =
        Unwrap(Execute(q, db, db.schema(), Strategy::kHybrid, indexed));
    Relation with_scan =
        Unwrap(Execute(q, db, db.schema(), Strategy::kHybrid, scan));
    HQL_CHECK_MSG(with_index == with_scan,
                  "indexed and scan routes must agree bit-identically");
  }
  ExecStats after = ctx.Snapshot();
  state.counters["indexes_built"] = static_cast<double>(after.indexes_built);
  state.counters["indexes_shared"] =
      static_cast<double>(after.indexes_shared);
  state.counters["index_probes"] = static_cast<double>(after.index_probes);
  state.counters["tuples_skipped"] =
      static_cast<double>(after.index_tuples_skipped);
}

// Equality on a key present in the data (the median base tuple's), so the
// result is non-empty and the bit-identical check is not vacuous.
QueryPtr SelectBody(const Database& db) {
  const Relation& r = db.GetRef("R");
  return Sel(Eq(Col(0),
                ScalarExpr::Literal(r.tuples()[r.size() / 2][0])),
             Rel("R"));
}

// S.$0 = R.$0: a join whose index column on R is the same {0} the
// selection uses — the whole family shares a single physical index.
QueryPtr JoinBody(const Database&) {
  return Join(Eq(Col(0), Col(2)), Rel("S"), Rel("R"));
}

void RunFamily(benchmark::State& state,
               QueryPtr (*make_body)(const Database&), bool indexed) {
  Database db = MakeRS(11, kBaseRows, kKeyDomain);
  std::vector<QueryPtr> family = MakeFamily(make_body(db));
  if (indexed) CheckAndExport(state, family, db);

  IndexAdvisor advisor(/*build_threshold=*/1);
  PlannerOptions options =
      indexed ? IndexedOptions(&advisor) : ScanOptions();
  uint64_t total = 0;
  for (auto _ : state) {
    total += EvalFamily(family, db, options);
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

void BM_SelectScan(benchmark::State& state) {
  RunFamily(state, SelectBody, /*indexed=*/false);
}
void BM_SelectIndexed(benchmark::State& state) {
  RunFamily(state, SelectBody, /*indexed=*/true);
}
void BM_JoinScan(benchmark::State& state) {
  RunFamily(state, JoinBody, /*indexed=*/false);
}
void BM_JoinIndexed(benchmark::State& state) {
  RunFamily(state, JoinBody, /*indexed=*/true);
}

BENCHMARK(BM_SelectScan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SelectIndexed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JoinScan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinIndexed)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e11_indexed_probes)
