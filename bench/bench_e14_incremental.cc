// E14 — Incremental re-evaluation under scenario edits.
//
// The incremental route's target workload: a family of queries re-asked
// across a chain of single-tuple edits to a large base relation. Each
// iteration advances the database by one overlay edit (ExecUpdate keeps the
// shared base; the edit is O(1) tuples) and re-executes the same plan. With
// incremental_mode=off every re-ask recomputes from scratch; with
// incremental_mode=auto the cached previous result is patched by
// delta-of-delta propagation (eval/incremental.h), so the work per re-ask
// is proportional to the edit, not the data.
//
// Rows (150k-row base):
//   SelectRecompute / SelectIncremental    sigma-band + project over R.
//   JoinRecompute / JoinIncremental        R join[$0 = $2] S (S indexed on
//                                          column 0; the patch probes the
//                                          index with the edit tuples).
//   UnionDiffRecompute / UnionDiffIncremental
//                                          (pi R u S) - sigma(S): the
//                                          multi-operator propagation path.
//   AggregateFallback                      a group-by plan: never patchable,
//                                          every re-ask must cleanly count a
//                                          fallback and recompute.
//
// Setup asserts bit-identical results between the incremental and
// from-scratch routes (and that patching actually engaged) before timing
// anything, so the speedup is never purchased with a wrong answer. Run with
// --json to write BENCH_e14_incremental.json plus the ExecStats sidecar
// (incremental_* counters included).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/exec_context.h"
#include "eval/direct.h"
#include "eval/incremental.h"
#include "eval/memo.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::Unwrap;

constexpr size_t kBaseRows = 150000;
constexpr size_t kJoinBuildRows = 10000;
constexpr int64_t kKeyDomain = 600000;

// The shared scenario: a large R, a smaller S with a hash index on its key
// column. Copying the Database is a refcount bump, so every benchmark
// derives its own edit chain from the same bases.
const Database& SharedDb() {
  static const Database* db = [] {
    Schema schema;
    HQL_CHECK(schema.AddRelation("R", 2).ok());
    HQL_CHECK(schema.AddRelation("S", 2).ok());
    Rng rng(23);
    auto* out = new Database(schema);
    HQL_CHECK(out->Set("R", GenRelation(&rng, kBaseRows, 2, kKeyDomain)).ok());
    HQL_CHECK(
        out->Set("S", GenRelation(&rng, kJoinBuildRows, 2, kKeyDomain)).ok());
    HQL_CHECK(out->BuildIndex("S", {0}).ok());
    return out;
  }();
  return *db;
}

QueryPtr SelectQuery() {
  return Proj({1}, Sel(And(Ge(Col(0), Int(kKeyDomain / 2)),
                           Lt(Col(0), Int(kKeyDomain / 2 + kKeyDomain / 20))),
                       Rel("R")));
}

QueryPtr JoinQuery() {
  return Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
}

QueryPtr UnionDiffQuery() {
  // A band-select under the union keeps the result small relative to the
  // scanned base, so the recompute cost is scan-dominated — the regime the
  // patch route targets (the patched result itself is also re-materialized
  // every re-ask, which would otherwise cap the speedup).
  QueryPtr band = Sel(And(Ge(Col(0), Int(kKeyDomain / 4)),
                          Lt(Col(0), Int(kKeyDomain / 4 + kKeyDomain / 20))),
                      Rel("R"));
  return Diff(U(Proj({0, 1}, band), Rel("S")),
              Sel(Lt(Col(0), Int(kKeyDomain / 10)), Rel("S")));
}

QueryPtr AggregateQuery() {
  return Agg({1}, AggFunc::kCount, 0,
             Sel(Lt(Col(0), Int(kKeyDomain / 4)), Rel("R")));
}

// One deterministic single-tuple edit: an insert into R drawn from the key
// domain (collisions with existing tuples are fine — the overlay stays
// canonical and the edit may then be empty, which the route also handles).
Result<Database> NextEdit(Rng* rng, const Database& db) {
  Tuple t;
  t.push_back(Value::Int(static_cast<int64_t>(rng->Next() % kKeyDomain)));
  t.push_back(Value::Int(static_cast<int64_t>(rng->Next() % 1000)));
  return ExecUpdate(Ins("R", Single(std::move(t))), db);
}

PlannerOptions Options(IncrementalMode mode, IncrementalCache* cache) {
  PlannerOptions options;
  options.incremental_mode = mode;
  options.incremental_cache = cache;
  options.index_mode = IndexMode::kManual;
  return options;
}

// Asserted once per incremental benchmark, before any timing: across a
// short edit chain the patched results are bit-identical to from-scratch
// evaluation, and the patch route actually engaged (a benchmark that
// silently recomputes would "win" nothing).
void CheckIdentity(const QueryPtr& query) {
  Database db = SharedDb();
  IncrementalCache cache;
  PlannerOptions incremental = Options(IncrementalMode::kAuto, &cache);
  PlannerOptions recompute = Options(IncrementalMode::kOff, nullptr);
  ExecStats before = AmbientExecContext().Snapshot();
  HQL_CHECK(Execute(query, db, db.schema(), Strategy::kLazy, incremental)
                .ok());
  Rng rng(310);
  for (int i = 0; i < 3; ++i) {
    db = Unwrap(NextEdit(&rng, db));
    Relation patched = Unwrap(
        Execute(query, db, db.schema(), Strategy::kLazy, incremental));
    Relation scratch = Unwrap(
        Execute(query, db, db.schema(), Strategy::kLazy, recompute));
    HQL_CHECK_MSG(patched == scratch,
                  "patched result must be bit-identical to recompute");
  }
  ExecStats after = AmbientExecContext().Snapshot();
  HQL_CHECK_MSG(
      after.incremental_results_patched > before.incremental_results_patched,
      "the incremental route must actually patch on single-tuple edits");
}

void ExportIncrementalCounters(benchmark::State& state,
                               const ExecStats& before) {
  ExecStats after = AmbientExecContext().Snapshot();
  state.counters["results_patched"] = static_cast<double>(
      after.incremental_results_patched - before.incremental_results_patched);
  state.counters["edits_propagated"] = static_cast<double>(
      after.incremental_edits_propagated -
      before.incremental_edits_propagated);
  state.counters["fallbacks"] = static_cast<double>(
      after.incremental_fallbacks - before.incremental_fallbacks);
}

// The benchmark body: advance the edit chain one tuple, re-ask the query.
// Both variants pay the same ExecUpdate; they differ only in how the re-ask
// is answered.
void RunEditChain(benchmark::State& state, const QueryPtr& query,
                  IncrementalMode mode) {
  IncrementalCache cache;
  PlannerOptions options =
      Options(mode, mode == IncrementalMode::kOff ? nullptr : &cache);
  Database db = SharedDb();
  // Warm run: with incremental on, records the execution the first patch
  // builds on; with it off, a plain evaluation for symmetry.
  Unwrap(Execute(query, db, db.schema(), Strategy::kLazy, options));
  Rng rng(627);
  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    db = Unwrap(NextEdit(&rng, db));
    total += Unwrap(Execute(query, db, db.schema(), Strategy::kLazy, options))
                 .size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportIncrementalCounters(state, before);
}

void BM_SelectRecompute(benchmark::State& state) {
  RunEditChain(state, SelectQuery(), IncrementalMode::kOff);
}
void BM_SelectIncremental(benchmark::State& state) {
  CheckIdentity(SelectQuery());
  RunEditChain(state, SelectQuery(), IncrementalMode::kAuto);
}

void BM_JoinRecompute(benchmark::State& state) {
  RunEditChain(state, JoinQuery(), IncrementalMode::kOff);
}
void BM_JoinIncremental(benchmark::State& state) {
  CheckIdentity(JoinQuery());
  RunEditChain(state, JoinQuery(), IncrementalMode::kAuto);
}

void BM_UnionDiffRecompute(benchmark::State& state) {
  RunEditChain(state, UnionDiffQuery(), IncrementalMode::kOff);
}
void BM_UnionDiffIncremental(benchmark::State& state) {
  CheckIdentity(UnionDiffQuery());
  RunEditChain(state, UnionDiffQuery(), IncrementalMode::kAuto);
}

// A plan the propagator does not cover: the estimator prices it at
// infinity, every re-ask counts a fallback and recomputes — cleanly, and
// at recompute cost (this row is the price of the guard rail, not a win).
void BM_AggregateFallback(benchmark::State& state) {
  IncrementalCache cache;
  PlannerOptions options = Options(IncrementalMode::kAuto, &cache);
  QueryPtr query = AggregateQuery();
  Database db = SharedDb();
  Unwrap(Execute(query, db, db.schema(), Strategy::kLazy, options));
  Rng rng(628);
  ExecStats before = AmbientExecContext().Snapshot();
  uint64_t total = 0;
  for (auto _ : state) {
    db = Unwrap(NextEdit(&rng, db));
    total += Unwrap(Execute(query, db, db.schema(), Strategy::kLazy, options))
                 .size();
  }
  ExecStats after = AmbientExecContext().Snapshot();
  HQL_CHECK_MSG(after.incremental_results_patched ==
                    before.incremental_results_patched,
                "an aggregate plan must never be patched");
  state.counters["result_tuples"] = static_cast<double>(total);
  ExportIncrementalCounters(state, before);
}

BENCHMARK(BM_SelectRecompute)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectIncremental)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinRecompute)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinIncremental)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UnionDiffRecompute)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UnionDiffIncremental)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggregateFallback)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e14_incremental)
