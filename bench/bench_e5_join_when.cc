// E5 — Section 5.5, the join-when operator under small deltas.
//
// Paper claim (rule of thumb): "if the delta has size x% of the base
// relations, then the join-when will take an additional ~11x% of time over
// the time for a join of the base relations" (2% -> +22%). More broadly,
// for small updates the delta representation beats materializing full
// xsub-values, which beats rebuilding the whole hypothetical state.
//
// Rows:
//   PlainJoin/<rows>            reference: R join S on the base state
//   JoinWhenDelta/<rows>/<pct>  six-operand sort-merge join-when
//   XsubMaterialize/<rows>/<pct> full new relation values + join
//   DirectState/<rows>/<pct>    whole-state copy + join (Example 2.1(a))

#include <benchmark/benchmark.h>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "eval/delta.h"
#include "eval/delta_ops.h"
#include "eval/direct.h"
#include "eval/ra_eval.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

constexpr int64_t kKeyDomainFactor = 2;  // keys span 2x rows: sparse join

ScalarExprPtr JoinPred() { return Eq(Col(0), Col(2)); }

// The hypothetical update: delete a `pct`% sample from each relation and
// insert fresh tuples of the same count.
struct DeltaSetup {
  DeltaValue delta;
  UpdatePtr update;  // the same change as an update expression
};

DeltaSetup MakeDelta(const Database& db, double frac, uint64_t seed) {
  Rng rng(seed);
  DeltaSetup setup;
  UpdatePtr update;
  for (const std::string name : {"R", "S"}) {
    const Relation& base = db.GetRef(name);
    Relation dels = SampleFraction(&rng, base, frac);
    size_t ins_count = static_cast<size_t>(
        frac * static_cast<double>(base.size()));
    Relation inss = GenRelation(
        &rng, ins_count, 2,
        static_cast<int64_t>(base.size()) * kKeyDomainFactor);
    setup.delta.Bind(name, DeltaPair(dels, inss));
    // NB: as an update expression the delta is a literal tuple set; for
    // benchmarking we bind the relations directly into the delta value and
    // use the xsub equivalent below.
    (void)update;
  }
  return setup;
}

void BM_PlainJoin(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Database db =
      MakeRS(17, rows, static_cast<int64_t>(rows) * kKeyDomainFactor);
  const Relation& r = db.GetRef("R");
  const Relation& s = db.GetRef("S");
  ScalarExprPtr pred = JoinPred();
  for (auto _ : state) {
    // The same sort-merge machinery as join-when, with empty deltas.
    Relation out = JoinWhen(r, nullptr, s, nullptr, 0, 0, pred);
    benchmark::DoNotOptimize(out);
  }
}

void BM_JoinWhenDelta(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const double frac = static_cast<double>(state.range(1)) / 1000.0;
  Database db =
      MakeRS(17, rows, static_cast<int64_t>(rows) * kKeyDomainFactor);
  DeltaSetup setup = MakeDelta(db, frac, 19);
  const Relation& r = db.GetRef("R");
  const Relation& s = db.GetRef("S");
  ScalarExprPtr pred = JoinPred();
  for (auto _ : state) {
    Relation out = JoinWhen(r, setup.delta.Get("R"), s, setup.delta.Get("S"),
                            0, 0, pred);
    benchmark::DoNotOptimize(out);
  }
  state.counters["delta_tuples"] =
      static_cast<double>(setup.delta.TotalTuples());
}

void BM_XsubMaterialize(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const double frac = static_cast<double>(state.range(1)) / 1000.0;
  Database db =
      MakeRS(17, rows, static_cast<int64_t>(rows) * kKeyDomainFactor);
  DeltaSetup setup = MakeDelta(db, frac, 19);
  ScalarExprPtr pred = JoinPred();
  for (auto _ : state) {
    // Materialize the full hypothetical relation values (the xsub-value of
    // the state's explicit substitution), then join them.
    Relation r2 = db.GetRef("R")
                      .DifferenceWith(setup.delta.Get("R")->del)
                      .UnionWith(setup.delta.Get("R")->ins);
    Relation s2 = db.GetRef("S")
                      .DifferenceWith(setup.delta.Get("S")->del)
                      .UnionWith(setup.delta.Get("S")->ins);
    Relation out = JoinWhen(r2, nullptr, s2, nullptr, 0, 0, pred);
    benchmark::DoNotOptimize(out);
  }
}

void BM_DirectState(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const double frac = static_cast<double>(state.range(1)) / 1000.0;
  Database db =
      MakeRS(17, rows, static_cast<int64_t>(rows) * kKeyDomainFactor);
  DeltaSetup setup = MakeDelta(db, frac, 19);
  QueryPtr join = Join(JoinPred(), Rel("R"), Rel("S"));
  for (auto _ : state) {
    // The traditional fully eager approach: build the complete hypothetical
    // database state, then evaluate.
    Database hypo = Unwrap(setup.delta.ApplyTo(db));
    Relation out = Unwrap(EvalDirect(join, hypo));
    benchmark::DoNotOptimize(out);
  }
}

void PlainArgs(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {10000, 50000, 200000}) b->Args({rows});
  b->Unit(benchmark::kMillisecond);
}

void DeltaArgs(benchmark::internal::Benchmark* b) {
  // Per-mille delta fractions: 0.5%, 1%, 2%, 4%, 8%, 16%.
  for (int64_t rows : {10000, 50000, 200000}) {
    for (int64_t pm : {5, 10, 20, 40, 80, 160}) {
      b->Args({rows, pm});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_PlainJoin)->Apply(PlainArgs);
BENCHMARK(BM_JoinWhenDelta)->Apply(DeltaArgs);
BENCHMARK(BM_XsubMaterialize)->Apply(DeltaArgs);
BENCHMARK(BM_DirectState)->Apply(DeltaArgs);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e5_join_when)
