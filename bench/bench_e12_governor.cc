// E12 — Governor overhead and cancellation latency.
//
// Two questions, answered on the E9 parallel-alternatives workload and a
// long chained scan:
//
//   1. What does an armed-but-untripped governor cost? The budget limits are
//      generous enough that nothing ever trips, so the measured delta over
//      the ungoverned row is pure accounting overhead (per-tuple atomic
//      charges plus the cooperative cadence check). Target: < 3%.
//   2. How long between CancelToken::Cancel() and the governed execution
//      returning kCancelled? Bounded by the cooperative check interval; the
//      manual-time row measures it directly for a 100k-row scan chain.
//
// Rows:
//   Ungoverned/<rows>/<alts>        E9 family fan-out, no governor at all.
//   Governed/<rows>/<alts>          same, with a generous budget + a live
//                                   (never-cancelled) token: the governor is
//                                   installed and charges every tuple.
//   GovernedArmedFailpoints/...     additionally arms every failpoint site
//                                   in fire-never mode, so the armed lookup
//                                   path runs on each hit. Under NDEBUG the
//                                   sites compile out and this row must
//                                   match Governed exactly.
//   TimeToCancel/<check_interval>   manual time = Cancel() -> return, for a
//                                   governed 100-stage chain of selections
//                                   over 100k rows, cancelled from another
//                                   thread 2 ms into the run.
//
// Run with --json to write BENCH_e12_governor.json.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/governor.h"
#include "eval/memo.h"
#include "opt/planner.h"
#include "opt/session.h"
#include "workload/version_tree.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

int64_t KeyDomain(size_t rows) { return static_cast<int64_t>(rows) * 2; }

// The E9 family: one expensive shared edge (self-join of S inserted into R)
// with `alternatives` cheap leaf deletions below it.
HypoExprPtr SharedEdge(size_t rows) {
  int64_t cut = KeyDomain(rows) / 2;
  return Comp(
      Upd(Del("S", Sel(Lt(Col(0), Int(cut)), Rel("S")))),
      Upd(Ins("R", Proj({0, 1}, Join(Eq(Col(0), Col(2)), Rel("S"),
                                     Rel("S"))))));
}

HypoExprPtr LeafEdge(int i, size_t rows) {
  int64_t window = KeyDomain(rows) / 32;
  int64_t lo = (static_cast<int64_t>(i) * 101) % KeyDomain(rows);
  return Upd(Del("R", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + window))),
                          Rel("R"))));
}

std::vector<HypoExprPtr> FamilyStates(int alternatives, size_t rows) {
  VersionTree tree;
  VersionTree::NodeId shared =
      tree.AddChild(VersionTree::kRoot, "shared", SharedEdge(rows));
  std::vector<HypoExprPtr> states;
  states.reserve(static_cast<size_t>(alternatives));
  for (int i = 0; i < alternatives; ++i) {
    VersionTree::NodeId leaf =
        tree.AddChild(shared, "alt" + std::to_string(i), LeafEdge(i, rows));
    states.push_back(tree.PathState(leaf));
  }
  return states;
}

QueryPtr FamilyQuery(size_t rows) {
  int64_t mid = KeyDomain(rows) / 2;
  return Sel(Ge(Col(0), Int(mid)), Rel("R"));
}

enum class Mode { kUngoverned, kGoverned, kGovernedArmedFailpoints };

// Limits chosen so no realistic run ever trips: the rows below measure the
// cost of *accounting*, not of tripping.
ExecBudget GenerousBudget() {
  ExecBudget budget;
  budget.deadline_ms = 60 * 60 * 1000;      // one hour
  budget.max_tuples = uint64_t{1} << 62;
  budget.max_rewrite_nodes = uint64_t{1} << 62;
  return budget;
}

void RunFamily(benchmark::State& state, Mode mode) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int alts = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  std::vector<HypoExprPtr> states = FamilyStates(alts, rows);
  QueryPtr query = FamilyQuery(rows);

  if (mode == Mode::kGovernedArmedFailpoints) {
    // Fire-never arming: every hit pays the armed lookup, nothing trips.
    // (Compiled out under NDEBUG — the row then matches Governed.)
    for (const std::string& site : RegisteredFailPointSites()) {
      ArmFailPoint(site, FailPointSpec::AfterN(uint64_t{1} << 62));
    }
  }

  uint64_t total = 0;
  for (auto _ : state) {
    MemoCache cache;
    AlternativesOptions options;
    options.strategy = Strategy::kLazy;
    options.num_threads = 4;
    options.planner.memo = &cache;
    if (mode != Mode::kUngoverned) {
      options.planner.budget = GenerousBudget();
      options.planner.cancel_token = std::make_shared<CancelToken>();
    }
    std::vector<Relation> results =
        Unwrap(EvalAlternatives(query, states, db, schema, options));
    for (const Relation& r : results) total += r.size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);

  if (mode == Mode::kGovernedArmedFailpoints) DisarmAllFailPoints();
}

void BM_Ungoverned(benchmark::State& state) {
  RunFamily(state, Mode::kUngoverned);
}
void BM_Governed(benchmark::State& state) {
  RunFamily(state, Mode::kGoverned);
}
void BM_GovernedArmedFailpoints(benchmark::State& state) {
  RunFamily(state, Mode::kGovernedArmedFailpoints);
}

void FamilyArgs(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {1000, 10000}) {
    for (int64_t alts : {4, 8}) {
      b->Args({rows, alts});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Ungoverned)->Apply(FamilyArgs);
BENCHMARK(BM_Governed)->Apply(FamilyArgs);
BENCHMARK(BM_GovernedArmedFailpoints)->Apply(FamilyArgs);

// Tracing overhead on the same E9 family: a caller-installed ExecContext
// with spans off (counter charging only — the always-on cost) vs spans on
// (every kernel records an OperatorSpan: clock reads plus a locked append).
// The TracingOff -> TracingOn delta is the cost of arming per-operator
// tracing; target < 5%, mirroring the Ungoverned -> Governed gate above.
void RunTracedFamily(benchmark::State& state, bool tracing) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int alts = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  std::vector<HypoExprPtr> states = FamilyStates(alts, rows);
  QueryPtr query = FamilyQuery(rows);

  uint64_t total = 0;
  uint64_t spans = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.set_tracing(tracing);
    ExecContextScope scope(&ctx);
    MemoCache cache;
    AlternativesOptions options;
    options.strategy = Strategy::kLazy;
    options.num_threads = 4;
    options.planner.memo = &cache;
    std::vector<Relation> results =
        Unwrap(EvalAlternatives(query, states, db, schema, options));
    for (const Relation& r : results) total += r.size();
    spans += ctx.Snapshot().spans.size();
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  state.counters["spans"] = static_cast<double>(spans);
}

void BM_TracingOff(benchmark::State& state) { RunTracedFamily(state, false); }
void BM_TracingOn(benchmark::State& state) { RunTracedFamily(state, true); }

BENCHMARK(BM_TracingOff)->Apply(FamilyArgs);
BENCHMARK(BM_TracingOn)->Apply(FamilyArgs);

// Time-to-cancel: a 100-stage chain of all-pass selections over a 100k-row
// relation (each stage re-scans and re-materializes 100k rows, so the whole
// query runs for hundreds of milliseconds ungoverned — far past the 2 ms
// cancel point, with memory bounded by one stage). The iteration time
// recorded is Cancel() -> Execute() return, i.e. observation latency plus
// unwind, as a function of the cooperative check interval.
void BM_TimeToCancel(benchmark::State& state) {
  const size_t rows = 100000;
  Database db = MakeRS(17, rows, KeyDomain(rows));
  QueryPtr q = Rel("R");
  for (int i = 0; i < 100; ++i) q = Sel(Ge(Col(0), Int(0)), q);

  uint64_t clean_cancels = 0;
  for (auto _ : state) {
    auto token = std::make_shared<CancelToken>();
    PlannerOptions options;
    options.cancel_token = token;
    options.budget.check_interval = static_cast<uint32_t>(state.range(0));

    std::chrono::steady_clock::time_point finished;
    StatusCode code = StatusCode::kOk;
    std::thread worker([&] {
      Result<Relation> result =
          Execute(q, db, db.schema(), Strategy::kDirect, options);
      finished = std::chrono::steady_clock::now();
      if (!result.ok()) code = result.status().code();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto cancelled_at = std::chrono::steady_clock::now();
    token->Cancel();
    worker.join();

    if (code == StatusCode::kCancelled) ++clean_cancels;
    double latency =
        std::chrono::duration<double>(finished - cancelled_at).count();
    state.SetIterationTime(latency > 0 ? latency : 0.0);
  }
  state.counters["scan_rows"] = static_cast<double>(rows);
  state.counters["clean_cancels"] = static_cast<double>(clean_cancels);
}

BENCHMARK(BM_TimeToCancel)
    ->Arg(1024)   // the default cooperative cadence
    ->Arg(64)     // tighter cadence: lower latency, more frequent polls
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(25);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e12_governor)
