// E10 — Copy-on-write state derivation: overlay views vs copying.
//
// The scenario behind the storage layer's existence: a large base relation
// (100k rows) and a family of hypothetical states that each rewrite only a
// handful of tuples. Deriving such a state used to cost a full copy of the
// base; with RelationView it costs O(|edge delta| log |base|) — the base is
// shared behind a refcount and only the overlay is owned.
//
// Rows (delta = total rewritten tuples, half inserts half deletes, on a
// 100k-row base):
//   DeriveOverlay/<delta>       child state via RelationView::ApplyDelta —
//                               the copy-on-write path.
//   DeriveCopy/<delta>          child state via Relation::ApplyTuples — the
//                               consolidating baseline (copies the base).
//   QueryOverlay/<delta>        selection evaluated directly over the
//                               overlay-backed state (merge iterators, no
//                               consolidation).
//   QueryConsolidated/<delta>   the same selection over the copied state.
//
// Setup asserts bit-identical contents between the overlay and the copied
// state, so the speedup is never purchased with a wrong answer. Counters
// report the view layer's own accounting (views created, consolidations,
// tuples shared vs copied) for the derivation rows.
// Run with --json to write BENCH_e10_cow_states.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "eval/ra_eval.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "common/exec_context.h"
#include "storage/view.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

constexpr size_t kBaseRows = 100000;
constexpr int64_t kKeyDomain = 200000;

// `delta` rewritten tuples: delta/2 fresh inserts (keys above the domain,
// so they are certainly not in the base) and delta/2 deletes of existing
// tuples, both sorted — exactly what ApplyTuples/ApplyDelta expect.
std::pair<std::vector<Tuple>, std::vector<Tuple>> MakeDelta(
    const Relation& base, size_t delta) {
  std::vector<Tuple> adds;
  adds.reserve(delta / 2);
  for (size_t i = 0; i < delta / 2; ++i) {
    adds.push_back({Value::Int(kKeyDomain + static_cast<int64_t>(i)),
                    Value::Int(static_cast<int64_t>(i))});
  }
  std::vector<Tuple> dels(base.tuples().begin(),
                          base.tuples().begin() +
                              static_cast<ptrdiff_t>(delta - delta / 2));
  return {std::move(adds), std::move(dels)};
}

void ExportViewCounters(benchmark::State& state, const ExecContext& ctx) {
  ExecStats after = ctx.Snapshot();
  state.counters["views_created"] = static_cast<double>(after.views_created);
  state.counters["consolidations"] =
      static_cast<double>(after.view_consolidations);
  state.counters["tuples_shared"] =
      static_cast<double>(after.view_tuples_shared);
  state.counters["tuples_copied"] =
      static_cast<double>(after.view_tuples_copied);
}

void BM_DeriveOverlay(benchmark::State& state) {
  const size_t delta = static_cast<size_t>(state.range(0));
  Database db = MakeRS(11, kBaseRows, kKeyDomain);
  RelationView base = Unwrap(db.GetView("R"));
  auto [adds, dels] = MakeDelta(base.Flat(), delta);
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  uint64_t derived = 0;
  for (auto _ : state) {
    RelationView child = base.ApplyDelta(adds, dels);
    benchmark::DoNotOptimize(child.size());
    derived += child.size();
  }
  ExportViewCounters(state, ctx);
  state.counters["derived_size"] = static_cast<double>(derived);
}

void BM_DeriveCopy(benchmark::State& state) {
  const size_t delta = static_cast<size_t>(state.range(0));
  Database db = MakeRS(11, kBaseRows, kKeyDomain);
  RelationView base = Unwrap(db.GetView("R"));
  auto [adds, dels] = MakeDelta(base.Flat(), delta);
  const Relation& flat = base.Flat();
  uint64_t derived = 0;
  for (auto _ : state) {
    Relation child = flat.ApplyTuples(adds, dels);
    benchmark::DoNotOptimize(child.size());
    derived += child.size();
  }
  state.counters["derived_size"] = static_cast<double>(derived);
}

// Shared query setup: a derived child database, either overlay-backed or
// consolidated, plus a one-time equality check between the two.
Database DeriveChild(const Database& db, size_t delta, bool overlay) {
  RelationView base = Unwrap(db.GetView("R"));
  auto [adds, dels] = MakeDelta(base.Flat(), delta);
  RelationView child_view = base.ApplyDelta(adds, dels);
  Relation child_flat = base.Flat().ApplyTuples(adds, dels);
  HQL_CHECK_MSG(child_view.ContentEquals(RelationView(child_flat)),
                "overlay and consolidated children must agree");
  Database out = db;
  if (overlay) {
    out.SetView("R", std::move(child_view));
  } else {
    HQL_CHECK(out.Set("R", std::move(child_flat)).ok());
  }
  return out;
}

void RunQuery(benchmark::State& state, bool overlay) {
  const size_t delta = static_cast<size_t>(state.range(0));
  Database db = MakeRS(11, kBaseRows, kKeyDomain);
  Database child = DeriveChild(db, delta, overlay);
  // Selective scan touching both halves of the key domain, so inserted and
  // surviving tuples both appear in the result.
  QueryPtr query = Sel(Ge(Col(0), Int(kKeyDomain - 64)), Rel("R"));
  DatabaseResolver resolver(child);
  Relation expected = Unwrap(EvalRa(query, resolver));
  uint64_t total = 0;
  for (auto _ : state) {
    Relation out = Unwrap(EvalRa(query, resolver));
    total += out.size();
  }
  // The two variants must stream identical results.
  Database other = DeriveChild(db, delta, !overlay);
  DatabaseResolver other_resolver(other);
  HQL_CHECK_MSG(Unwrap(EvalRa(query, other_resolver)) == expected,
                "overlay and consolidated query results must agree");
  state.counters["result_tuples"] = static_cast<double>(total);
}

void BM_QueryOverlay(benchmark::State& state) { RunQuery(state, true); }
void BM_QueryConsolidated(benchmark::State& state) { RunQuery(state, false); }

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t delta : {10, 100, 1000}) b->Arg(delta);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_DeriveOverlay)->Apply(Args);
BENCHMARK(BM_DeriveCopy)->Apply(Args);
BENCHMARK(BM_QueryOverlay)->Apply(Args);
BENCHMARK(BM_QueryConsolidated)->Apply(Args);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e10_cow_states)
