// E1 — Example 2.1, hypothetical queries using alternatives.
//
// Paper claim: the eager strategy (materialize the hypothetical state, then
// filter query evaluation through it) wins when many queries are asked
// against one hypothetical state; the lazy strategy (rewrite each query to
// pure RA via substitutions) wins for one-shot queries. The crossover moves
// with the number of queries per state.
//
// Rows: Eager/<rows>/<queries_per_state> vs Lazy/<rows>/<queries_per_state>.
// Each iteration answers `queries_per_state` selection queries against the
// same hypothetical state eta3 # eta1 (a path in the tree of alternatives).

#include <benchmark/benchmark.h>

#include "ast/builders.h"
#include "bench/bench_util.h"
#include "eval/direct.h"
#include "eval/ra_eval.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "opt/planner.h"
#include "opt/session.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using bench::MakeRS;
using bench::Unwrap;

// Sparse keys: the self-join in the state stays near-linear.
int64_t KeyDomain(size_t rows) { return static_cast<int64_t>(rows) * 2; }

// The hypothetical state is deliberately expensive: it inserts the result
// of a self-join of S into R and trims S. Lazy evaluation re-runs this
// expression for every family member; eager evaluation materializes it
// once per hypothetical state.
HypoExprPtr PathState(size_t rows) {
  int64_t cut = KeyDomain(rows) / 2;
  return Comp(
      Upd(Del("S", Sel(Lt(Col(0), Int(cut)), Rel("S")))),
      Upd(Ins("R", Proj({0, 1}, Join(Eq(Col(0), Col(2)), Rel("S"),
                                     Rel("S"))))));
}

// The i-th query of the family: a cheap selection over R.
QueryPtr FamilyQuery(int i, size_t rows) {
  int64_t window = KeyDomain(rows) / 16;
  int64_t lo = (static_cast<int64_t>(i) * 37) % KeyDomain(rows);
  return Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + window))),
             Rel("R"));
}

void BM_Eager(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int queries = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  HypoExprPtr eta = PathState(rows);
  uint64_t total = 0;
  for (auto _ : state) {
    // Materialize the hypothetical state once per batch...
    Database hypo = Unwrap(EvalState(eta, db));
    // ...then filter every query of the family through it.
    for (int i = 0; i < queries; ++i) {
      Relation out = Unwrap(EvalDirect(FamilyQuery(i, rows), hypo));
      total += out.size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  state.counters["per_query_us"] = benchmark::Counter(
      static_cast<double>(queries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Lazy(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int queries = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  HypoExprPtr eta = PathState(rows);
  DatabaseResolver resolver(db);
  uint64_t total = 0;
  for (auto _ : state) {
    for (int i = 0; i < queries; ++i) {
      // Rewrite each hypothetical query to pure RA and evaluate: no state
      // is ever materialized, but the substituted state queries re-run per
      // family member.
      QueryPtr q = Query::When(FamilyQuery(i, rows), eta);
      QueryPtr reduced = Unwrap(Reduce(q, schema));
      reduced = Unwrap(SimplifyRa(reduced, schema));
      Relation out = Unwrap(EvalRa(reduced, resolver));
      total += out.size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  state.counters["per_query_us"] = benchmark::Counter(
      static_cast<double>(queries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Hybrid(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int queries = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  HypoExprPtr eta = PathState(rows);
  PlannerOptions options;
  options.reuse_count = static_cast<double>(queries);
  uint64_t total = 0;
  for (auto _ : state) {
    for (int i = 0; i < queries; ++i) {
      QueryPtr q = Query::When(FamilyQuery(i, rows), eta);
      Relation out =
          Unwrap(Execute(q, db, schema, Strategy::kHybrid, options));
      total += out.size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
}

// The official amortization API: one HypotheticalSession per state, all
// family members answered through its materialization.
void BM_Session(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int queries = static_cast<int>(state.range(1));
  Database db = MakeRS(7, rows, KeyDomain(rows));
  const Schema& schema = db.schema();
  HypoExprPtr eta = PathState(rows);
  uint64_t total = 0;
  for (auto _ : state) {
    HypotheticalSession session =
        Unwrap(HypotheticalSession::Create(eta, db, schema));
    for (int i = 0; i < queries; ++i) {
      total += Unwrap(session.Evaluate(FamilyQuery(i, rows))).size();
    }
  }
  state.counters["result_tuples"] = static_cast<double>(total);
  state.counters["per_query_us"] = benchmark::Counter(
      static_cast<double>(queries) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {1000, 10000}) {
    for (int64_t queries : {1, 4, 16, 64}) {
      b->Args({rows, queries});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Eager)->Apply(Args);
BENCHMARK(BM_Lazy)->Apply(Args);
BENCHMARK(BM_Hybrid)->Apply(Args);
BENCHMARK(BM_Session)->Apply(Args);

// The static analysis of Example 2.1(b): query (1) rewrites to the empty
// query without touching the database; this measures the analysis itself.
void BM_StaticAnalysisOfQuery1(benchmark::State& state) {
  Schema schema;
  HQL_CHECK(schema.AddRelation("R", 2).ok());
  HQL_CHECK(schema.AddRelation("S", 2).ok());
  QueryPtr rjoins = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  QueryPtr query1 = When(
      Diff(When(rjoins, Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S"))))),
           When(rjoins, Upd(Ins("R", Sel(Gt(Col(0), Int(30)), Rel("S")))))),
      Upd(Del("S", Sel(Lt(Col(0), Int(60)), Rel("S")))));
  for (auto _ : state) {
    QueryPtr reduced = Unwrap(Reduce(query1, schema));
    QueryPtr simplified = Unwrap(SimplifyRa(reduced, schema));
    HQL_CHECK(simplified->kind() == QueryKind::kEmpty);
    benchmark::DoNotOptimize(simplified);
  }
}

BENCHMARK(BM_StaticAnalysisOfQuery1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e1_alternatives)
