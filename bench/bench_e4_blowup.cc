// E4 — Example 2.4, exponential blow-up of the fully lazy strategy.
//
// Paper claims:
//   (a) the lazy equivalent red(Q) of the n-step chain is exponential in n
//       even though Q itself is linear;
//   (b) relational-algebra rewriting can collapse the chain (with one
//       difference step) to the empty query before any data is touched;
//   (c) eager evaluation avoids the blow-up entirely when the values stay
//       small.
//
// Rows: LazyRewrite/<n> (with tree/dag size counters), RewriteCollapses/<n>,
// EagerEval/<n> vs LazyEval/<n> on singleton data.

#include <benchmark/benchmark.h>

#include "ast/metrics.h"
#include "bench/bench_util.h"
#include "eval/filter2.h"
#include "eval/ra_eval.h"
#include "hql/enf.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "workload/generators.h"

namespace hql {
namespace {

using bench::Unwrap;

// (a): cost and size of the fully lazy rewrite.
void BM_LazyRewrite(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BlowupSpec spec = BlowupChain(n);
  QueryPtr reduced;
  for (auto _ : state) {
    reduced = Unwrap(Reduce(spec.query, spec.schema));
    benchmark::DoNotOptimize(reduced);
  }
  state.counters["hql_tree"] = TreeSize(spec.query);
  state.counters["lazy_tree"] = TreeSize(reduced);
  state.counters["lazy_dag"] = static_cast<double>(DagSize(reduced));
}

BENCHMARK(BM_LazyRewrite)->DenseRange(1, 16, 3)->Unit(benchmark::kMicrosecond);

// (b): with E_j = R_j - R_j the rewriter reaches `empty` statically.
void BM_RewriteCollapses(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BlowupSpec spec = BlowupChainWithDifference(n, (n + 1) / 2);
  for (auto _ : state) {
    QueryPtr reduced = Unwrap(Reduce(spec.query, spec.schema));
    QueryPtr simplified = Unwrap(SimplifyRa(reduced, spec.schema));
    HQL_CHECK(simplified->kind() == QueryKind::kEmpty);
    benchmark::DoNotOptimize(simplified);
  }
}

BENCHMARK(BM_RewriteCollapses)
    ->DenseRange(2, 14, 3)
    ->Unit(benchmark::kMicrosecond);

namespace {

Database SingletonChainDb(const BlowupSpec& spec, int n) {
  Database db(spec.schema);
  for (int i = 0; i <= n; ++i) {
    std::string name = "R" + std::to_string(i);
    size_t arity = spec.schema.ArityOf(name).value();
    Tuple t;
    for (size_t c = 0; c < arity; ++c) t.push_back(Value::Int(1));
    HQL_CHECK(db.Set(name, Relation::FromTuples(arity, {t})).ok());
  }
  return db;
}

}  // namespace

// (c): eager evaluation of the chain on singleton data: linear work.
void BM_EagerEval(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BlowupSpec spec = BlowupChain(n);
  Database db = SingletonChainDb(spec, n);
  QueryPtr enf = Unwrap(ToEnf(spec.query, spec.schema));
  for (auto _ : state) {
    Relation out = Unwrap(RunFilter2(enf, db, spec.schema));
    HQL_CHECK(out.size() == 1);
    benchmark::DoNotOptimize(out);
  }
}

// Lazy evaluation of the same chain: the rewritten query has 2^n leaves,
// so even singleton data costs exponential work.
void BM_LazyEval(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BlowupSpec spec = BlowupChain(n);
  Database db = SingletonChainDb(spec, n);
  DatabaseResolver resolver(db);
  for (auto _ : state) {
    QueryPtr reduced = Unwrap(Reduce(spec.query, spec.schema));
    Relation out = Unwrap(EvalRa(reduced, resolver));
    HQL_CHECK(out.size() == 1);
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_EagerEval)->DenseRange(2, 12, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LazyEval)->DenseRange(2, 12, 2)->Unit(benchmark::kMicrosecond);

// Example 2.4(c): E_i = sigma[$0 < 0](R_i x R_i) has small (empty)
// intersections — eager computes each once, lazy drags an exponential
// expression through evaluation.
void BM_EagerEvalSmallValues(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BlowupSpec spec = BlowupChainSmallValues(n);
  Database db = SingletonChainDb(spec, n);
  QueryPtr enf = Unwrap(ToEnf(spec.query, spec.schema));
  for (auto _ : state) {
    Relation out = Unwrap(RunFilter2(enf, db, spec.schema));
    benchmark::DoNotOptimize(out);
  }
}

void BM_LazyEvalSmallValues(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BlowupSpec spec = BlowupChainSmallValues(n);
  Database db = SingletonChainDb(spec, n);
  DatabaseResolver resolver(db);
  for (auto _ : state) {
    QueryPtr reduced = Unwrap(Reduce(spec.query, spec.schema));
    Relation out = Unwrap(EvalRa(reduced, resolver));
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_EagerEvalSmallValues)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LazyEvalSmallValues)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hql

HQL_BENCH_MAIN(e4_blowup)
