#include "hql/rewrite_when.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/metrics.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

// Checks one rewrite for soundness: same value in many random states.
void ExpectEquivalent(const QueryPtr& before, const QueryPtr& after,
                      uint64_t seed = 99) {
  Rng rng(seed);
  Schema schema = PropertySchema();
  for (int trial = 0; trial < 30; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    ASSERT_OK_AND_ASSIGN(Relation a, EvalDirect(before, db));
    ASSERT_OK_AND_ASSIGN(Relation b, EvalDirect(after, db));
    EXPECT_EQ(a, b) << before->ToString() << "\n!=\n" << after->ToString();
  }
}

TEST(RewriteWhenTest, RelWhenSubstBound) {
  // R when {Q/R} == Q.
  QueryPtr q = When(Rel("A1"), Sub1(U(Rel("A1"), Rel("B1")), "A1"));
  QueryPtr rewritten = equiv::RelWhenSubst(q);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_TRUE(rewritten->Equals(*U(Rel("A1"), Rel("B1"))));
  ExpectEquivalent(q, rewritten);
}

TEST(RewriteWhenTest, RelWhenSubstUnbound) {
  // R when {Q/S} == R when R has no binding.
  QueryPtr q = When(Rel("A1"), Sub1(Rel("A1"), "B1"));
  QueryPtr rewritten = equiv::RelWhenSubst(q);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_TRUE(rewritten->Equals(*Rel("A1")));
  ExpectEquivalent(q, rewritten);
}

TEST(RewriteWhenTest, RelWhenSubstDoesNotApplyToUpdateStates) {
  QueryPtr q = When(Rel("A1"), Upd(Ins("A1", Rel("B1"))));
  EXPECT_EQ(equiv::RelWhenSubst(q), nullptr);
}

TEST(RewriteWhenTest, SingletonAndEmptyWhen) {
  HypoExprPtr h = Sub1(Rel("B1"), "A1");
  QueryPtr s = When(Single({Value::Int(1)}), h);
  ASSERT_NE(equiv::SingletonWhen(s), nullptr);
  EXPECT_TRUE(equiv::SingletonWhen(s)->Equals(*Single({Value::Int(1)})));

  QueryPtr e = When(Empty(2), h);
  ASSERT_NE(equiv::EmptyWhen(e), nullptr);
  EXPECT_TRUE(equiv::EmptyWhen(e)->Equals(*Empty(2)));
}

TEST(RewriteWhenTest, PushWhenUnary) {
  HypoExprPtr h = Sub1(Rel("B2"), "A2");
  QueryPtr q = When(Sel(Gt(Col(0), Int(3)), Rel("A2")), h);
  QueryPtr rewritten = equiv::PushWhenUnary(q);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->kind(), QueryKind::kSelect);
  EXPECT_EQ(rewritten->left()->kind(), QueryKind::kWhen);
  ExpectEquivalent(q, rewritten);

  QueryPtr p = When(Proj({0}, Rel("A2")), h);
  rewritten = equiv::PushWhenUnary(p);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->kind(), QueryKind::kProject);
  ExpectEquivalent(p, rewritten);
}

TEST(RewriteWhenTest, PushWhenBinaryAllOps) {
  HypoExprPtr h = Upd(Ins("A1", Rel("B1")));
  std::vector<QueryPtr> bodies = {
      U(Rel("A1"), Rel("B1")), N(Rel("A1"), Rel("B1")),
      Diff(Rel("A1"), Rel("B1")), X(Rel("A1"), Rel("B1")),
      Join(Eq(Col(0), Col(1)), Rel("A1"), Rel("B1"))};
  for (const QueryPtr& body : bodies) {
    QueryPtr q = When(body, h);
    QueryPtr rewritten = equiv::PushWhenBinary(q);
    ASSERT_NE(rewritten, nullptr) << body->ToString();
    EXPECT_EQ(rewritten->kind(), body->kind());
    EXPECT_EQ(rewritten->left()->kind(), QueryKind::kWhen);
    EXPECT_EQ(rewritten->right()->kind(), QueryKind::kWhen);
    ExpectEquivalent(q, rewritten);
  }
}

TEST(RewriteWhenTest, ConvertToExplicit) {
  HypoExprPtr ins = Upd(Ins("A1", Rel("B1")));
  HypoExprPtr conv = equiv::ConvertToExplicit(ins);
  ASSERT_NE(conv, nullptr);
  ASSERT_EQ(conv->kind(), HypoKind::kSubst);
  EXPECT_TRUE(conv->BindingFor("A1")->Equals(*U(Rel("A1"), Rel("B1"))));

  HypoExprPtr del = Upd(Del("A1", Rel("B1")));
  conv = equiv::ConvertToExplicit(del);
  ASSERT_NE(conv, nullptr);
  EXPECT_TRUE(conv->BindingFor("A1")->Equals(*Diff(Rel("A1"), Rel("B1"))));

  HypoExprPtr seq = Upd(Seq(Ins("A1", Rel("B1")), Del("B1", Rel("A1"))));
  conv = equiv::ConvertToExplicit(seq);
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->kind(), HypoKind::kCompose);

  // Soundness of each conversion as a when-state.
  for (const HypoExprPtr& h : {ins, del, seq}) {
    QueryPtr before = When(U(Rel("A1"), Rel("B1")), h);
    QueryPtr after = When(U(Rel("A1"), Rel("B1")),
                          equiv::ConvertToExplicit(h));
    ExpectEquivalent(before, after);
  }
}

TEST(RewriteWhenTest, ReplaceNestedWhen) {
  // (Q when eta1) when eta2 == Q when (eta2 # eta1).
  HypoExprPtr eta1 = Upd(Ins("A1", Rel("B1")));
  HypoExprPtr eta2 = Upd(Del("B1", Rel("A1")));
  QueryPtr q = When(When(U(Rel("A1"), Rel("B1")), eta1), eta2);
  QueryPtr rewritten = equiv::ReplaceNestedWhen(q);
  ASSERT_NE(rewritten, nullptr);
  ASSERT_EQ(rewritten->kind(), QueryKind::kWhen);
  ASSERT_EQ(rewritten->state()->kind(), HypoKind::kCompose);
  // eta2 comes first in the composition (applied to the database first).
  EXPECT_TRUE(rewritten->state()->first()->Equals(*eta2));
  EXPECT_TRUE(rewritten->state()->second()->Equals(*eta1));
  ExpectEquivalent(q, rewritten);
}

TEST(RewriteWhenTest, AssocCompose) {
  HypoExprPtr a = Sub1(Rel("B1"), "A1");
  HypoExprPtr b = Sub1(Rel("A1"), "B1");
  HypoExprPtr c = Sub1(U(Rel("A1"), Rel("B1")), "A1");
  HypoExprPtr left = Comp(Comp(a, b), c);
  HypoExprPtr rewritten = equiv::AssocCompose(left);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_TRUE(rewritten->Equals(*Comp(a, Comp(b, c))));
  ExpectEquivalent(When(Rel("A1"), left), When(Rel("A1"), rewritten));
}

TEST(RewriteWhenTest, ComputeCompositionTextual) {
  // {(A1 u B1)/A1} # {sigma(A1)/B1}: pure bindings compose textually.
  HypoExprPtr e1 = Sub1(U(Rel("A1"), Rel("B1")), "A1");
  HypoExprPtr e2 = Sub1(Sel(Gt(Col(0), Int(2)), Rel("A1")), "B1");
  HypoExprPtr composed = equiv::ComputeComposition(Comp(e1, e2));
  ASSERT_NE(composed, nullptr);
  ASSERT_EQ(composed->kind(), HypoKind::kSubst);
  // Binding for B1 references A1's new value textually; A1 carried over.
  EXPECT_TRUE(composed->BindingFor("B1")->Equals(
      *Sel(Gt(Col(0), Int(2)), U(Rel("A1"), Rel("B1")))));
  EXPECT_TRUE(composed->BindingFor("A1")->Equals(*U(Rel("A1"), Rel("B1"))));
  ExpectEquivalent(When(X(Rel("A1"), Rel("B1")), Comp(e1, e2)),
                   When(X(Rel("A1"), Rel("B1")), composed));
}

TEST(RewriteWhenTest, ComputeCompositionHypotheticalBindings) {
  // A binding containing `when` forces the `P when eps1` wrapping form.
  HypoExprPtr e1 = Sub1(U(Rel("A1"), Rel("B1")), "A1");
  HypoExprPtr e2 =
      Sub1(When(Rel("A1"), Upd(Del("A1", Rel("B1")))), "B1");
  HypoExprPtr composed = equiv::ComputeComposition(Comp(e1, e2));
  ASSERT_NE(composed, nullptr);
  QueryPtr b1 = composed->BindingFor("B1");
  ASSERT_NE(b1, nullptr);
  EXPECT_EQ(b1->kind(), QueryKind::kWhen);  // P when eps1
  ExpectEquivalent(When(X(Rel("A1"), Rel("B1")), Comp(e1, e2)),
                   When(X(Rel("A1"), Rel("B1")), composed));
}

TEST(RewriteWhenTest, SubstSimplifyBindingRemoval) {
  // Q mentions only A1; the binding for B2 can be dropped (Example 2.3).
  HypoExprPtr state = Sub({Binding{"A1", U(Rel("A1"), Rel("B1"))},
                           Binding{"B2", X(Rel("A1"), Rel("B1"))}});
  QueryPtr q = When(Sel(Gt(Col(0), Int(1)), Rel("A1")), state);
  QueryPtr rewritten = equiv::SubstSimplify(q);
  ASSERT_NE(rewritten, nullptr);
  ASSERT_EQ(rewritten->kind(), QueryKind::kWhen);
  EXPECT_EQ(rewritten->state()->bindings().size(), 1u);
  EXPECT_EQ(rewritten->state()->bindings()[0].rel_name, "A1");
  ExpectEquivalent(q, rewritten);
}

TEST(RewriteWhenTest, SubstSimplifyIdentityAndEmpty) {
  // Identity binding A1/A1 drops; an emptied substitution drops the when.
  QueryPtr q = When(Rel("A1"), Sub1(Rel("A1"), "A1"));
  QueryPtr rewritten = equiv::SubstSimplify(q);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_TRUE(rewritten->Equals(*Rel("A1")));

  QueryPtr q2 = When(Rel("A1"), Sub({}));
  rewritten = equiv::SubstSimplify(q2);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_TRUE(rewritten->Equals(*Rel("A1")));
}

TEST(RewriteWhenTest, SubstSimplifyNoChange) {
  QueryPtr q = When(Rel("A1"), Sub1(Rel("B1"), "A1"));
  EXPECT_EQ(equiv::SubstSimplify(q), nullptr);
}

TEST(RewriteWhenTest, CommuteHypotheticalsApplies) {
  // Disjoint states commute.
  HypoExprPtr eta1 = Upd(Ins("A1", Single({Value::Int(1)})));
  HypoExprPtr eta2 = Upd(Del("B1", Single({Value::Int(2)})));
  QueryPtr q = When(When(U(Rel("A1"), Rel("B1")), eta1), eta2);
  QueryPtr rewritten = equiv::CommuteHypotheticals(q);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_TRUE(rewritten->state()->Equals(*eta1));
  EXPECT_TRUE(rewritten->left()->state()->Equals(*eta2));
  ExpectEquivalent(q, rewritten);
}

TEST(RewriteWhenTest, CommuteHypotheticalsBlockedByOverlap) {
  // dom overlap.
  HypoExprPtr eta1 = Upd(Ins("A1", Single({Value::Int(1)})));
  HypoExprPtr eta2 = Upd(Del("A1", Single({Value::Int(2)})));
  EXPECT_EQ(equiv::CommuteHypotheticals(
                When(When(Rel("A1"), eta1), eta2)),
            nullptr);
  // dom(eta1) intersects free(eta2).
  HypoExprPtr eta3 = Upd(Del("B1", Rel("A1")));
  EXPECT_EQ(equiv::CommuteHypotheticals(
                When(When(Rel("A1"), eta1), eta3)),
            nullptr);
}

TEST(RewriteWhenTest, RandomizedRuleSoundness) {
  // Fire every applicable rule on random hypothetical queries and check
  // value preservation against the direct semantics.
  Rng rng(101);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  int fired = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, 8);
    QueryPtr body = RandomQuery(&rng, schema, 2, options);
    HypoExprPtr state = RandomHypo(&rng, schema, options);
    QueryPtr q = When(body, state);

    std::vector<QueryPtr> rewrites;
    for (QueryPtr r : {equiv::RelWhenSubst(q), equiv::SingletonWhen(q),
                       equiv::EmptyWhen(q), equiv::PushWhenUnary(q),
                       equiv::PushWhenBinary(q), equiv::ReplaceNestedWhen(q),
                       equiv::SubstSimplify(q),
                       equiv::CommuteHypotheticals(q)}) {
      if (r != nullptr) rewrites.push_back(r);
    }
    if (HypoExprPtr h = equiv::ConvertToExplicit(state); h != nullptr) {
      rewrites.push_back(When(body, h));
    }
    if (HypoExprPtr h = equiv::ComputeComposition(state); h != nullptr) {
      rewrites.push_back(When(body, h));
    }
    if (HypoExprPtr h = equiv::AssocCompose(state); h != nullptr) {
      rewrites.push_back(When(body, h));
    }

    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, db));
    for (const QueryPtr& r : rewrites) {
      ++fired;
      ASSERT_OK_AND_ASSIGN(Relation value, EvalDirect(r, db));
      EXPECT_EQ(reference, value)
          << q->ToString() << "\n-->\n" << r->ToString();
    }
  }
  EXPECT_GT(fired, 200);  // the rules actually fired
}

}  // namespace
}  // namespace hql
