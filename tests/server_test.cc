#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "parser/parser.h"
#include "server/client.h"
#include "server/wire.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

// ---------------------------------------------------------------------------
// Wire grammar & responses (no sockets)

TEST(WireTest, ParsesEveryShape) {
  ASSERT_OK_AND_ASSIGN(WireRequest r, ParseWireRequest("ping"));
  EXPECT_EQ(r.op, "ping");
  EXPECT_TRUE(r.args.empty());

  ASSERT_OK_AND_ASSIGN(r, ParseWireRequest("set strategy filter3"));
  EXPECT_EQ(r.args, (std::vector<std::string>{"strategy", "filter3"}));

  ASSERT_OK_AND_ASSIGN(
      r, ParseWireRequest("derive root hire {ins(emp, {(1, 2)})}"));
  EXPECT_EQ(r.args, (std::vector<std::string>{"root", "hire"}));
  EXPECT_EQ(r.tail, "{ins(emp, {(1, 2)})}");

  ASSERT_OK_AND_ASSIGN(r, ParseWireRequest("query n1 sigma[$0 > 3](emp)"));
  EXPECT_EQ(r.tail, "sigma[$0 > 3](emp)");

  ASSERT_OK_AND_ASSIGN(r, ParseWireRequest("compare a b emp x dept"));
  EXPECT_EQ(r.args, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.tail, "emp x dept");

  // Extra spaces and CR are tolerated.
  ASSERT_OK_AND_ASSIGN(r, ParseWireRequest("  drop   n1 \r"));
  EXPECT_EQ(r.args[0], "n1");
}

TEST(WireTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseWireRequest("").ok());
  EXPECT_FALSE(ParseWireRequest("   ").ok());
  EXPECT_FALSE(ParseWireRequest("launch missiles").ok());
  EXPECT_FALSE(ParseWireRequest("derive onlyparent").ok());
  EXPECT_FALSE(ParseWireRequest("query n1").ok());     // missing tail
  EXPECT_FALSE(ParseWireRequest("ping extra").ok());   // no-arg op with junk
  EXPECT_FALSE(ParseWireRequest("set onlyknob").ok());
  EXPECT_TRUE(IsWireOp("fetch"));
  EXPECT_FALSE(IsWireOp("exec"));
}

TEST(WireTest, ResponsesAreValidJson) {
  Relation rel = Ints({{1, 2}, {3, 4}});
  std::string ok = std::move(WireResponse(true)
                                 .AddString("name", "a \"b\"\nc")
                                 .AddNumber("rows", 2)
                                 .AddBool("done", true))
                       .Finish();
  ASSERT_OK_AND_ASSIGN(JsonPtr doc, ParseJson(ok));
  EXPECT_TRUE(doc->Get("ok")->bool_value());
  EXPECT_EQ(doc->Get("name")->string_value(), "a \"b\"\nc");
  EXPECT_EQ(doc->Get("rows")->number(), 2);

  std::string with_rel =
      std::move(WireResponse(true).AddRelationSummary(rel).AddTuples(rel))
          .Finish();
  ASSERT_OK_AND_ASSIGN(doc, ParseJson(with_rel));
  EXPECT_EQ(doc->Get("rows")->number(), 2);
  EXPECT_EQ(doc->Get("arity")->number(), 2);
  EXPECT_TRUE(doc->Get("hash")->is_string());
  ASSERT_EQ(doc->Get("tuples")->items().size(), 2u);
  EXPECT_EQ(doc->Get("tuples")->items()[0]->string_value(), "(1, 2)");

  std::string err = WireResponse::Error(Status::NotFound("no scenario 'x'"));
  ASSERT_OK_AND_ASSIGN(doc, ParseJson(err));
  EXPECT_FALSE(doc->Get("ok")->bool_value());
  EXPECT_EQ(doc->Get("code")->string_value(), "NotFound");
}

// ---------------------------------------------------------------------------
// A live server over a small fixed database

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : engine_(SmallDb()), server_(&engine_, ServerOptions()) {}

  static Database SmallDb() {
    Database db(MakeSchema({{"emp", 2}, {"dept", 2}}));
    HQL_CHECK(db.Set("emp", Ints({{1, 10}, {2, 10}, {3, 20}})).ok());
    HQL_CHECK(db.Set("dept", Ints({{10, 100}, {20, 200}})).ok());
    return db;
  }

  void SetUp() override { ASSERT_OK(server_.Start()); }
  void TearDown() override { server_.Stop(); }

  Result<WireClient> Connect() { return WireClient::Connect(server_.port()); }

  /// Waits until the server has no live handler threads.
  bool DrainConnections(int timeout_ms = 10000) {
    for (int waited = 0; waited < timeout_ms; waited += 10) {
      if (server_.active_connections() == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  Engine engine_;
  HqlServer server_;
};

TEST_F(ServerTest, ScriptedExchange) {
  ASSERT_OK_AND_ASSIGN(WireClient client, Connect());
  ASSERT_OK_AND_ASSIGN(JsonPtr pong, client.CallOk("ping"));
  EXPECT_EQ(pong->Get("server")->string_value(), "hql");

  ASSERT_OK(client.CallOk("derive root hire {ins(emp, {(4, 20)})}").status());
  ASSERT_OK(client.CallOk("derive hire fire {del(emp, {(1, 10)})}").status());
  ASSERT_OK_AND_ASSIGN(JsonPtr q, client.CallOk("query fire emp"));
  EXPECT_EQ(q->Get("rows")->number(), 3);

  ASSERT_OK_AND_ASSIGN(JsonPtr f, client.CallOk("fetch hire emp"));
  ASSERT_EQ(f->Get("tuples")->items().size(), 4u);

  ASSERT_OK_AND_ASSIGN(JsonPtr cmp, client.CallOk("compare hire root emp"));
  EXPECT_EQ(cmp->Get("rows")->number(), 1);

  ASSERT_OK_AND_ASSIGN(JsonPtr nodes, client.CallOk("nodes"));
  EXPECT_EQ(nodes->Get("nodes")->items().size(), 3u);

  ASSERT_OK_AND_ASSIGN(JsonPtr an, client.CallOk("analyze hire emp"));
  EXPECT_EQ(an->Get("rows")->number(), 4);
  EXPECT_TRUE(an->Get("route")->is_string());

  ASSERT_OK_AND_ASSIGN(JsonPtr st, client.CallOk("stats"));
  EXPECT_EQ(st->Get("stats")->Get("schema")->string_value(),
            "hql-exec-stats/v1");

  // Errors are responses, not disconnects.
  ASSERT_OK_AND_ASSIGN(JsonPtr err, client.Call("query ghost emp"));
  EXPECT_FALSE(err->Get("ok")->bool_value());
  EXPECT_EQ(err->Get("code")->string_value(), "NotFound");
  ASSERT_OK_AND_ASSIGN(err, client.Call("query root emp when"));
  EXPECT_EQ(err->Get("code")->string_value(), "InvalidArgument");

  ASSERT_OK_AND_ASSIGN(JsonPtr bye, client.CallOk("quit"));
  EXPECT_TRUE(bye->Get("bye")->bool_value());
  EXPECT_TRUE(DrainConnections());
  EXPECT_EQ(engine_.live_sessions(), 0u);
}

TEST_F(ServerTest, SetProfileAndGovernorRejection) {
  ASSERT_OK_AND_ASSIGN(WireClient client, Connect());
  ASSERT_OK(client.CallOk("profile safe").status());
  ASSERT_OK_AND_ASSIGN(JsonPtr opts, client.CallOk("options"));
  EXPECT_NE(opts->Get("options")->string_value().find("deadline_ms=10000"),
            std::string::npos);

  ASSERT_OK(client.CallOk("set max_tuples 4").status());
  ASSERT_OK_AND_ASSIGN(JsonPtr err,
                       client.Call("query root sigma[$0 >= 0](emp x emp)"));
  EXPECT_FALSE(err->Get("ok")->bool_value());
  EXPECT_EQ(err->Get("code")->string_value(), "ResourceExhausted");

  // The connection survives a governor rejection, and lifting the budget
  // makes the same query run.
  ASSERT_OK(client.CallOk("set max_tuples 0").status());
  ASSERT_OK_AND_ASSIGN(JsonPtr q,
                       client.CallOk("query root sigma[$0 >= 0](emp x emp)"));
  EXPECT_EQ(q->Get("rows")->number(), 9);

  EXPECT_FALSE(client.CallOk("set max_sessions 10").ok());
  EXPECT_FALSE(client.CallOk("profile turbo").ok());
  client.Quit();
}

TEST_F(ServerTest, SessionsAreSnapshotIsolated) {
  ASSERT_OK_AND_ASSIGN(WireClient a, Connect());
  ASSERT_OK_AND_ASSIGN(WireClient b, Connect());
  ASSERT_OK(a.CallOk("derive root drop_all {del(emp, emp)}").status());

  // b neither sees a's scenarios nor a's names.
  ASSERT_OK_AND_ASSIGN(JsonPtr nodes, b.CallOk("nodes"));
  EXPECT_EQ(nodes->Get("nodes")->items().size(), 1u);
  ASSERT_OK_AND_ASSIGN(JsonPtr err, b.Call("query drop_all emp"));
  EXPECT_EQ(err->Get("code")->string_value(), "NotFound");

  // A base commit is invisible until an explicit refresh.
  ASSERT_OK_AND_ASSIGN(UpdatePtr upd, ParseUpdate("ins(emp, {(9, 90)})"));
  ASSERT_OK(engine_.Apply(upd));
  ASSERT_OK_AND_ASSIGN(JsonPtr q, b.CallOk("query root emp"));
  EXPECT_EQ(q->Get("rows")->number(), 3);
  ASSERT_OK(b.CallOk("refresh").status());
  ASSERT_OK_AND_ASSIGN(q, b.CallOk("query root emp"));
  EXPECT_EQ(q->Get("rows")->number(), 4);

  // a still reads its original snapshot.
  ASSERT_OK_AND_ASSIGN(q, a.CallOk("query root emp"));
  EXPECT_EQ(q->Get("rows")->number(), 3);
  a.Quit();
  b.Quit();
}

TEST_F(ServerTest, AdmissionCapSendsErrorAndCloses) {
  EngineOptions opts = engine_.options();
  opts.max_sessions = 2;
  ASSERT_OK(engine_.SetOptions(opts));
  ASSERT_OK_AND_ASSIGN(WireClient a, Connect());
  ASSERT_OK(a.CallOk("ping").status());
  ASSERT_OK_AND_ASSIGN(WireClient b, Connect());
  ASSERT_OK(b.CallOk("ping").status());

  ASSERT_OK_AND_ASSIGN(WireClient c, Connect());
  // The rejected connection gets one unsolicited error line, then EOF.
  ASSERT_OK_AND_ASSIGN(JsonPtr rejected, c.Call("ping"));
  EXPECT_FALSE(rejected->Get("ok")->bool_value());
  EXPECT_EQ(rejected->Get("code")->string_value(), "ResourceExhausted");

  // Freeing a slot lets the next connection in.
  a.Quit();
  for (int waited = 0; waited < 5000 && engine_.live_sessions() >= 2;
       waited += 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_OK_AND_ASSIGN(WireClient d, Connect());
  ASSERT_OK(d.CallOk("ping").status());
  d.Quit();
  b.Quit();
}

TEST_F(ServerTest, ConcurrentSessionsZeroInterference) {
  constexpr int kClients = 8;
  constexpr int kRounds = 15;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = WireClient::Connect(server_.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      std::string mine = "mine" + std::to_string(i);
      std::string value = std::to_string(100 + i);
      if (!client->CallOk("derive root " + mine + " {ins(emp, {(" + value +
                          ", 10)})}")
               .ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        auto q = client->CallOk("query " + mine + " emp");
        if (!q.ok() || (*q)->Get("rows")->number() != 4) ++failures;
        auto base = client->CallOk("query root emp");
        if (!base.ok() || (*base)->Get("rows")->number() != 3) ++failures;
        // Another client's scenario name must never resolve here.
        std::string theirs = "mine" + std::to_string((i + 1) % kClients);
        auto err = client->Call("query " + theirs + " emp");
        if (!err.ok() ||
            (*err)->Get("code")->string_value() != "NotFound") {
          ++failures;
        }
      }
      client->Quit();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(DrainConnections());
  EXPECT_EQ(engine_.live_sessions(), 0u);
}

TEST_F(ServerTest, StopWithLiveConnectionsIsClean) {
  ASSERT_OK_AND_ASSIGN(WireClient a, Connect());
  ASSERT_OK_AND_ASSIGN(WireClient b, Connect());
  ASSERT_OK(a.CallOk("ping").status());
  ASSERT_OK(b.CallOk("derive root x {ins(emp, {(8, 10)})}").status());
  server_.Stop();
  EXPECT_EQ(engine_.live_sessions(), 0u);
  // The clients observe EOF, not a hang.
  EXPECT_FALSE(a.Call("ping").ok());
  // And the server can be started again on a fresh port.
  ASSERT_OK(server_.Start());
  ASSERT_OK_AND_ASSIGN(WireClient c, Connect());
  ASSERT_OK(c.CallOk("ping").status());
  c.Quit();
}

// ---------------------------------------------------------------------------
// Disconnect-mid-query cleanup (the monitor thread's job)

TEST(ServerDisconnectTest, MidQueryDisconnectCancelsAndCleansUp) {
  // A base big enough that the governed selection over the self-product
  // (16M charged output tuples) takes far longer than the monitor's poll
  // interval.
  Rng rng(7);
  Schema schema = MakeSchema({{"R", 2}});
  Database db(schema);
  HQL_CHECK(db.Set("R", GenRelation(&rng, 4000, 2, 1 << 20)).ok());
  Engine engine(std::move(db));
  HqlServer server(&engine, ServerOptions());
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(WireClient client, WireClient::Connect(server.port()));
  ASSERT_OK(client.CallOk("ping").status());
  ASSERT_OK(client.Send("query root sigma[$0 >= 0](R x R)"));
  // Vanish without reading the response.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.Close();

  // The monitor must notice the hang-up, cancel the in-flight query, and
  // the handler must release the session — long before the query could
  // finish.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (engine.live_sessions() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(engine.live_sessions(), 0u);

  // The server is still healthy for new clients.
  ASSERT_OK_AND_ASSIGN(WireClient again, WireClient::Connect(server.port()));
  ASSERT_OK_AND_ASSIGN(JsonPtr q, again.CallOk("query root sigma[$0 < 0](R)"));
  EXPECT_EQ(q->Get("rows")->number(), 0);
  again.Quit();
  server.Stop();
}

}  // namespace
}  // namespace hql
