// Tests for the reuse-oriented APIs: MaterializeXsub / MaterializeDelta
// (Examples 2.2(a)/(b)) and the VersionTree workload (Example 2.1).

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/filter1.h"
#include "eval/filter3.h"
#include "eval/materialize.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "opt/planner.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/version_tree.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(MaterializeTest, XsubMatchesDirectState) {
  Rng rng(1103);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    HypoExprPtr eta = RandomHypo(&rng, schema, options);
    ASSERT_OK_AND_ASSIGN(XsubValue xsub, MaterializeXsub(eta, db, schema));
    ASSERT_OK_AND_ASSIGN(Database via_xsub, xsub.ApplyTo(db));
    ASSERT_OK_AND_ASSIGN(Database via_state, EvalState(eta, db));
    EXPECT_EQ(via_xsub, via_state) << eta->ToString();
  }
}

TEST(MaterializeTest, DeltaCapturesXsub) {
  // apply(DB, delta) == apply(DB, xsub): the "captures" property of
  // Section 5.5 for the precise construction.
  Rng rng(1109);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    HypoExprPtr eta = RandomHypo(&rng, schema, options);
    ASSERT_OK_AND_ASSIGN(XsubValue xsub, MaterializeXsub(eta, db, schema));
    ASSERT_OK_AND_ASSIGN(DeltaValue delta,
                         MaterializeDelta(eta, db, schema));
    ASSERT_OK_AND_ASSIGN(Database via_xsub, xsub.ApplyTo(db));
    ASSERT_OK_AND_ASSIGN(Database via_delta, delta.ApplyTo(db));
    EXPECT_EQ(via_xsub, via_delta) << eta->ToString();
    // The precise delta never stores a tuple on both sides for no reason:
    // its total size is bounded by xsub size + affected base sizes.
    for (const auto& [name, pair] : delta.pairs()) {
      ASSERT_OK_AND_ASSIGN(Relation base, db.Get(name));
      EXPECT_LE(pair.del.size(), base.size());
    }
  }
}

TEST(MaterializeTest, SmashCapturesComposition) {
  // The Section 5.5 lemma: if Delta1 captures [eta1] in DB and Delta2
  // captures [eta2] in apply(DB, Delta1), then Delta1 ! Delta2 captures
  // [eta1 # eta2] in DB.
  Rng rng(1129);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 2;
  for (int trial = 0; trial < 100; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    HypoExprPtr eta1 = RandomHypo(&rng, schema, options);
    HypoExprPtr eta2 = RandomHypo(&rng, schema, options);

    ASSERT_OK_AND_ASSIGN(DeltaValue d1, MaterializeDelta(eta1, db, schema));
    ASSERT_OK_AND_ASSIGN(Database mid, d1.ApplyTo(db));
    ASSERT_OK_AND_ASSIGN(DeltaValue d2, MaterializeDelta(eta2, mid, schema));

    ASSERT_OK_AND_ASSIGN(Database via_smash, d1.SmashWith(d2).ApplyTo(db));
    ASSERT_OK_AND_ASSIGN(Database via_state,
                         EvalState(Comp(eta1, eta2), db));
    EXPECT_EQ(via_smash, via_state)
        << eta1->ToString() << " # " << eta2->ToString();
  }
}

TEST(MaterializeTest, ReuseAcrossFamily) {
  // Materialize once, answer a family by filtering through the xsub env:
  // same values as evaluating each hypothetical query from scratch.
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Rng rng(1117);
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 100, 2, 50)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 100, 2, 50)));
  HypoExprPtr eta = Upd(Seq(Ins("R", Sel(Ge(Col(0), Int(10)), Rel("S"))),
                            Del("S", Sel(Lt(Col(0), Int(30)), Rel("S")))));
  ASSERT_OK_AND_ASSIGN(XsubValue env, MaterializeXsub(eta, db, schema));
  Filter1Options options;
  options.env = &env;
  for (int i = 0; i < 10; ++i) {
    QueryPtr family = Sel(Eq(Col(0), Int(i * 5)), U(Rel("R"), Rel("S")));
    ASSERT_OK_AND_ASSIGN(Relation fast, RunFilter1(family, db, options));
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         EvalDirect(Query::When(family, eta), db));
    EXPECT_EQ(fast, reference);
  }
}

TEST(VersionTreeTest, PathStatesCompose) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));

  VersionTree tree;
  auto v1 = tree.AddChild(VersionTree::kRoot, "add S to R",
                          Upd(Ins("R", Rel("S"))));
  auto v2a = tree.AddChild(v1, "clear S", Upd(Del("S", Rel("S"))));
  auto v2b = tree.AddChild(v1, "add 9", Upd(Ins("R", Single({Value::Int(9)}))));
  EXPECT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree.parent(v2a), v1);
  EXPECT_EQ(tree.label(v2b), "add 9");

  // Root: query sees the base state.
  ASSERT_OK_AND_ASSIGN(
      Relation at_root,
      EvalDirect(tree.QueryAt(VersionTree::kRoot, Rel("R")), db));
  EXPECT_EQ(at_root, Ints({{1}}));

  // v1: R = {1, 2}.
  ASSERT_OK_AND_ASSIGN(Relation at_v1,
                       EvalDirect(tree.QueryAt(v1, Rel("R")), db));
  EXPECT_EQ(at_v1, Ints({{1}, {2}}));

  // v2a: R unchanged from v1, S empty.
  ASSERT_OK_AND_ASSIGN(Relation s_v2a,
                       EvalDirect(tree.QueryAt(v2a, Rel("S")), db));
  EXPECT_TRUE(s_v2a.empty());
  ASSERT_OK_AND_ASSIGN(Relation r_v2a,
                       EvalDirect(tree.QueryAt(v2a, Rel("R")), db));
  EXPECT_EQ(r_v2a, Ints({{1}, {2}}));

  // v2b: R = {1, 2, 9}.
  ASSERT_OK_AND_ASSIGN(Relation r_v2b,
                       EvalDirect(tree.QueryAt(v2b, Rel("R")), db));
  EXPECT_EQ(r_v2b, Ints({{1}, {2}, {9}}));

  // Example 2.1's comparison query between the two alternatives.
  ASSERT_OK_AND_ASSIGN(Relation diff,
                       EvalDirect(tree.CompareAt(v2b, v2a, Rel("R")), db));
  EXPECT_EQ(diff, Ints({{9}}));

  // The real state never changed.
  EXPECT_EQ(db.GetRef("R"), Ints({{1}}));
  EXPECT_EQ(db.GetRef("S"), Ints({{2}}));
}

TEST(VersionTreeTest, AllStrategiesAgreeOnTreeQueries) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Rng rng(1123);
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 60, 2, 40)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 60, 2, 40)));

  VersionTree tree;
  auto v1 = tree.AddChild(
      VersionTree::kRoot, "v1",
      Upd(Del("S", Sel(Lt(Col(0), Int(20)), Rel("S")))));
  auto v2a = tree.AddChild(
      v1, "v2a", Upd(Ins("R", Sel(Ge(Col(0), Int(10)), Rel("S")))));
  auto v2b = tree.AddChild(
      v1, "v2b", Upd(Ins("R", Sel(Gt(Col(0), Int(10)), Rel("S")))));

  QueryPtr body = Proj({0}, Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")));
  QueryPtr compare = tree.CompareAt(v2a, v2b, body);
  ASSERT_OK_AND_ASSIGN(Relation reference,
                       Execute(compare, db, schema, Strategy::kDirect));
  for (Strategy s : {Strategy::kLazy, Strategy::kFilter1, Strategy::kFilter2,
                     Strategy::kFilter3, Strategy::kHybrid}) {
    ASSERT_OK_AND_ASSIGN(Relation out, Execute(compare, db, schema, s));
    EXPECT_EQ(out, reference) << StrategyName(s);
  }
}

}  // namespace
}  // namespace hql
