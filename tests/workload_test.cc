#include "workload/generators.h"

#include <gtest/gtest.h>

#include "ast/metrics.h"
#include "ast/typecheck.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "hql/reduce.h"
#include "tests/test_util.h"

namespace hql {
namespace {

TEST(GenRelationTest, RespectsShape) {
  Rng rng(1201);
  Relation r = GenRelation(&rng, 500, 3, 1000, 50);
  EXPECT_EQ(r.arity(), 3u);
  EXPECT_EQ(r.size(), 500u);
  for (const Tuple& t : r) {
    ASSERT_EQ(t.size(), 3u);
    ASSERT_TRUE(t[0].is_int());
    EXPECT_GE(t[0].AsInt(), 0);
    EXPECT_LT(t[0].AsInt(), 1000);
    EXPECT_LT(t[1].AsInt(), 50);
  }
}

TEST(GenRelationTest, CapsAtDomainCapacity) {
  // Asking for more distinct rows than the domain allows returns fewer
  // rows instead of looping forever.
  Rng rng(1203);
  Relation r = GenRelation(&rng, 1000, 1, 10);
  EXPECT_LE(r.size(), 10u);
  EXPECT_GE(r.size(), 5u);
}

TEST(GenRelationTest, ZipfSkewsKeys) {
  Rng rng(1207);
  Relation r = GenRelation(&rng, 400, 2, 1000, 1000000, 1.2);
  size_t low_keys = 0;
  for (const Tuple& t : r) {
    if (t[0].AsInt() < 100) ++low_keys;
  }
  // Zipf 1.2 concentrates mass on low ranks far beyond the uniform 10%.
  EXPECT_GT(low_keys, r.size() / 4);
}

TEST(GenRelationTest, ZeroRowsYieldsEmptyRelation) {
  Rng rng(1209);
  Relation r = GenRelation(&rng, 0, 3, 1000);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.arity(), 3u);
}

TEST(GenRelationTest, SingletonDomains) {
  // key_domain=1 and value_domain=1 admit exactly one distinct tuple per
  // arity; the generator must cap there rather than spin.
  Rng rng(1211);
  Relation keys = GenRelation(&rng, 50, 2, /*key_domain=*/1,
                              /*value_domain=*/1);
  EXPECT_LE(keys.size(), 1u);
  for (const Tuple& t : keys) {
    EXPECT_EQ(t[0].AsInt(), 0);
    EXPECT_EQ(t[1].AsInt(), 0);
  }
}

TEST(GenRelationTest, ZipfOnTinyKeyDomainStaysInRange) {
  // Skew must not push keys outside [0, key_domain) even when the domain
  // is smaller than the Zipf tail the skew would prefer.
  Rng rng(1217);
  Relation r = GenRelation(&rng, 20, 2, /*key_domain=*/3,
                           /*value_domain=*/1000, /*zipf_s=*/2.5);
  EXPECT_LE(r.size(), 20u);
  for (const Tuple& t : r) {
    EXPECT_GE(t[0].AsInt(), 0);
    EXPECT_LT(t[0].AsInt(), 3);
  }
}

TEST(SampleFractionTest, EmptyRelationAllFractions) {
  Rng rng(1219);
  Relation empty(2);
  for (double frac : {0.0, 0.3, 1.0}) {
    Relation sample = SampleFraction(&rng, empty, frac);
    EXPECT_TRUE(sample.empty());
    EXPECT_EQ(sample.arity(), 2u);
  }
}

TEST(SampleFractionTest, FractionsClampOutsideUnitInterval) {
  Rng rng(1223);
  Relation base = GenRelation(&rng, 40, 2, 600);
  EXPECT_TRUE(SampleFraction(&rng, base, -0.5).empty());
  EXPECT_EQ(SampleFraction(&rng, base, 1.5), base);
}

TEST(SampleFractionTest, ProducesSubset) {
  Rng rng(1213);
  Relation base = GenRelation(&rng, 300, 2, 600);
  Relation sample = SampleFraction(&rng, base, 0.25);
  EXPECT_LT(sample.size(), base.size());
  EXPECT_GT(sample.size(), 20u);
  for (const Tuple& t : sample) EXPECT_TRUE(base.Contains(t));
  // Edge fractions.
  EXPECT_TRUE(SampleFraction(&rng, base, 0.0).empty());
  EXPECT_EQ(SampleFraction(&rng, base, 1.0), base);
}

TEST(PropertySchemaTest, Shape) {
  Schema schema = PropertySchema();
  EXPECT_EQ(schema.NumRelations(), 6u);
  for (size_t arity = 1; arity <= 3; ++arity) {
    EXPECT_EQ(schema.ArityOf("A" + std::to_string(arity)).value(), arity);
    EXPECT_EQ(schema.ArityOf("B" + std::to_string(arity)).value(), arity);
  }
}

TEST(RandomAstTest, GeneratedQueriesTypecheck) {
  Rng rng(1217);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 4;
  options.allow_cond = true;
  options.allow_aggregate = true;
  for (int trial = 0; trial < 300; ++trial) {
    size_t arity = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    QueryPtr q = RandomQuery(&rng, schema, arity, options);
    ASSERT_OK_AND_ASSIGN(size_t inferred, InferQueryArity(q, schema));
    EXPECT_EQ(inferred, arity) << q->ToString();
  }
  for (int trial = 0; trial < 200; ++trial) {
    EXPECT_OK(CheckUpdate(RandomUpdate(&rng, schema, options), schema));
    EXPECT_OK(CheckHypo(RandomHypo(&rng, schema, options), schema));
  }
}

TEST(BlowupSpecTest, SmallValuesChainIsEmptyButExponential) {
  BlowupSpec spec = BlowupChainSmallValues(8);
  ASSERT_OK(InferQueryArity(spec.query, spec.schema).status());
  // Linear HQL query, exponential lazy tree.
  EXPECT_LT(TreeSize(spec.query), 100.0);
  ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(spec.query, spec.schema));
  EXPECT_GT(TreeSize(red), 200.0);
  // The value is empty on non-negative data.
  Database db(spec.schema);
  for (int i = 0; i <= 8; ++i) {
    std::string name = "R" + std::to_string(i);
    size_t arity = spec.schema.ArityOf(name).value();
    Tuple t;
    for (size_t c = 0; c < arity; ++c) t.push_back(Value::Int(1));
    ASSERT_OK(db.Set(name, Relation::FromTuples(arity, {t})));
  }
  ASSERT_OK_AND_ASSIGN(Relation out, EvalDirect(spec.query, db));
  EXPECT_TRUE(out.empty());
}

TEST(BlowupSpecTest, DifferenceChainTypechecks) {
  for (int j = 1; j <= 6; ++j) {
    BlowupSpec spec = BlowupChainWithDifference(6, j);
    EXPECT_OK(InferQueryArity(spec.query, spec.schema).status()) << j;
  }
}

}  // namespace
}  // namespace hql
