// Tests for the state-level `when` (eta1 when eta2), the construct the
// paper defers to its full version: the state change of eta1 as computed
// in eta2's hypothetical world, applied to the current database.

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "hql/enf.h"
#include "hql/free_dom.h"
#include "hql/reduce.h"
#include "opt/planner.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

class StateWhenTest : public ::testing::Test {
 protected:
  Schema schema_ = MakeSchema({{"R", 1}, {"S", 1}});

  Database Db(std::initializer_list<int64_t> r,
              std::initializer_list<int64_t> s) {
    Database db(schema_);
    std::vector<Tuple> rt, st;
    for (int64_t v : r) rt.push_back({Value::Int(v)});
    for (int64_t v : s) st.push_back({Value::Int(v)});
    EXPECT_OK(db.Set("R", Relation::FromTuples(1, std::move(rt))));
    EXPECT_OK(db.Set("S", Relation::FromTuples(1, std::move(st))));
    return db;
  }
};

TEST_F(StateWhenTest, BasicSemantics) {
  // eta1 = ins(R, S); eta2 = ins(S, {9}).
  // (eta1 when eta2): R gains S-as-it-would-be (including 9), but S itself
  // is NOT changed in the resulting state.
  HypoExprPtr eta1 = Upd(Ins("R", Rel("S")));
  HypoExprPtr eta2 = Upd(Ins("S", Single({Value::Int(9)})));
  Database db = Db({1}, {2});

  ASSERT_OK_AND_ASSIGN(Database out,
                       EvalState(HypoExpr::StateWhen(eta1, eta2), db));
  EXPECT_EQ(out.GetRef("R"), Ints({{1}, {2}, {9}}));
  EXPECT_EQ(out.GetRef("S"), Ints({{2}}));  // eta2's write discarded
}

TEST_F(StateWhenTest, DiffersFromComposition) {
  // eta2 # eta1 keeps eta2's writes; eta1 when eta2 does not.
  HypoExprPtr eta1 = Upd(Ins("R", Rel("S")));
  HypoExprPtr eta2 = Upd(Ins("S", Single({Value::Int(9)})));
  Database db = Db({1}, {2});

  ASSERT_OK_AND_ASSIGN(Database composed,
                       EvalState(Comp(eta2, eta1), db));
  EXPECT_EQ(composed.GetRef("R"), Ints({{1}, {2}, {9}}));
  EXPECT_EQ(composed.GetRef("S"), Ints({{2}, {9}}));  // kept by #

  ASSERT_OK_AND_ASSIGN(Database when_state,
                       EvalState(HypoExpr::StateWhen(eta1, eta2), db));
  EXPECT_EQ(when_state.GetRef("R"), composed.GetRef("R"));
  EXPECT_NE(when_state.GetRef("S"), composed.GetRef("S"));
}

TEST_F(StateWhenTest, FreeAndDom) {
  HypoExprPtr eta1 = Upd(Ins("R", Rel("S")));
  HypoExprPtr eta2 = Upd(Del("S", Rel("R")));
  HypoExprPtr sw = HypoExpr::StateWhen(eta1, eta2);
  EXPECT_EQ(DomNames(sw), NameSet{"R"});  // only eta1 writes
  // eta2 reads R and S; eta1's read of S is shadowed by dom(eta2)={S},
  // its read of R is not.
  EXPECT_EQ(FreeNames(sw), (NameSet{"R", "S"}));
}

TEST_F(StateWhenTest, ParserRoundTrip) {
  ASSERT_OK_AND_ASSIGN(QueryPtr q,
                       ParseQuery("R when ({ins(R, S)} when {del(S, R)})"));
  ASSERT_EQ(q->kind(), QueryKind::kWhen);
  EXPECT_EQ(q->state()->kind(), HypoKind::kStateWhen);
  ASSERT_OK_AND_ASSIGN(QueryPtr again, ParseQuery(q->ToString()));
  EXPECT_TRUE(again->Equals(*q)) << q->ToString();
}

TEST_F(StateWhenTest, ReduceAgreesWithDirect) {
  Rng rng(411);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  for (int trial = 0; trial < 200; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, 8);
    HypoExprPtr eta1 = RandomHypo(&rng, schema, options);
    HypoExprPtr eta2 = RandomHypo(&rng, schema, options);
    HypoExprPtr sw = HypoExpr::StateWhen(eta1, eta2);

    ASSERT_OK_AND_ASSIGN(Substitution rho, ReduceHypo(sw, schema));
    ASSERT_OK_AND_ASSIGN(Database via_subst, ApplySubstitution(rho, db));
    ASSERT_OK_AND_ASSIGN(Database via_direct, EvalState(sw, db));
    EXPECT_EQ(via_subst, via_direct) << sw->ToString();
  }
}

TEST_F(StateWhenTest, AllStrategiesAgreeUnderQueries) {
  Rng rng(413);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 2;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, 8);
    QueryPtr body = RandomQuery(&rng, schema, 2, options);
    HypoExprPtr sw = HypoExpr::StateWhen(RandomHypo(&rng, schema, options),
                                         RandomHypo(&rng, schema, options));
    QueryPtr q = Query::When(body, sw);
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    for (Strategy s : {Strategy::kLazy, Strategy::kFilter1,
                       Strategy::kFilter2, Strategy::kFilter3,
                       Strategy::kHybrid}) {
      auto result = Execute(q, db, schema, s);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value(), reference)
          << StrategyName(s) << " on " << q->ToString();
    }
  }
}

TEST_F(StateWhenTest, EnfConversionWrapsBindings) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  HypoExprPtr sw = HypoExpr::StateWhen(Upd(Ins("R", Rel("S"))),
                                       Upd(Del("S", Rel("R"))));
  QueryPtr q = Query::When(Rel("R"), sw);
  ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema));
  EXPECT_TRUE(IsEnf(enf));
  ASSERT_EQ(enf->state()->kind(), HypoKind::kSubst);
  // Only R is bound (dom(eta1)); its binding evaluates under eta2's state.
  EXPECT_EQ(enf->state()->bindings().size(), 1u);
  QueryPtr binding = enf->state()->BindingFor("R");
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->kind(), QueryKind::kWhen);
}

TEST_F(StateWhenTest, NestedStateWhens) {
  // ((eta1 when eta2) when eta3): contexts stack.
  HypoExprPtr eta1 = Upd(Ins("R", Rel("S")));
  HypoExprPtr eta2 = Upd(Ins("S", Rel("R")));
  HypoExprPtr eta3 = Upd(Ins("R", Single({Value::Int(7)})));
  HypoExprPtr nested =
      HypoExpr::StateWhen(HypoExpr::StateWhen(eta1, eta2), eta3);
  Database db = Db({1}, {2});
  // eta3 world: R={1,7}. eta2 in that world: S={1,2,7}. eta1 there:
  // R = {1,7} u {1,2,7} = {1,2,7}. Applied to db: R={1,2,7}, S={2}.
  ASSERT_OK_AND_ASSIGN(Database out, EvalState(nested, db));
  EXPECT_EQ(out.GetRef("R"), Ints({{1}, {2}, {7}}));
  EXPECT_EQ(out.GetRef("S"), Ints({{2}}));
}

}  // namespace
}  // namespace hql
