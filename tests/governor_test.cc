// The execution governor: budget edge cases (exact tuple budgets, deadlines
// expiring mid-join, rewrite blow-up trips and the lazy -> hybrid -> eager
// fallback lattice), cooperative cancellation, and per-alternative isolation
// in EvalAlternatives.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ast/builders.h"
#include "common/exec_context.h"
#include "common/governor.h"
#include "common/rng.h"
#include "opt/planner.h"
#include "opt/session.h"
#include "storage/index.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using hql::testing::Ints;
using hql::testing::MakeSchema;

// ---------------------------------------------------------------------------
// ExecGovernor unit tests.
// ---------------------------------------------------------------------------

TEST(ExecGovernorTest, UnlimitedGovernorNeverTrips) {
  ExecGovernor gov;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(gov.ChargeTuples(17));
    EXPECT_TRUE(gov.Tick(1));
    EXPECT_TRUE(gov.ChargeRewriteNodes(5));
  }
  EXPECT_OK(gov.Check());
  EXPECT_FALSE(gov.tripped());
}

TEST(ExecGovernorTest, TupleBudgetExactBoundary) {
  ExecBudget budget;
  budget.max_tuples = 10;
  ExecGovernor gov(budget);
  // Charging exactly the budget succeeds...
  EXPECT_TRUE(gov.ChargeTuples(4));
  EXPECT_TRUE(gov.ChargeTuples(6));
  EXPECT_OK(gov.Check());
  // ...one more tuple trips with kResourceExhausted.
  EXPECT_FALSE(gov.ChargeTuples(1));
  EXPECT_TRUE(gov.tripped());
  EXPECT_EQ(gov.status().code(), StatusCode::kResourceExhausted);
  // Once tripped, everything keeps failing (loops break out).
  EXPECT_FALSE(gov.ChargeTuples(1));
  EXPECT_FALSE(gov.Tick(1));
}

TEST(ExecGovernorTest, CancelTokenObservedWithinOneCheckInterval) {
  ExecBudget budget;
  budget.check_interval = 16;
  auto token = std::make_shared<CancelToken>();
  ExecGovernor gov(budget, token);
  EXPECT_TRUE(gov.Tick(1));
  token->Cancel();
  // Within one check interval the tick path must observe the token.
  bool observed = false;
  for (int i = 0; i < 16; ++i) {
    if (!gov.Tick(1)) {
      observed = true;
      break;
    }
  }
  EXPECT_TRUE(observed);
  EXPECT_EQ(gov.status().code(), StatusCode::kCancelled);
  // Check() observes it regardless of cadence.
  ExecGovernor gov2(ExecBudget{}, token);
  EXPECT_EQ(gov2.Check().code(), StatusCode::kCancelled);
}

TEST(ExecGovernorTest, DeadlineTrips) {
  ExecBudget budget;
  budget.deadline_ms = 1;
  ExecGovernor gov(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = gov.Check();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("deadline"), std::string::npos);
}

TEST(ExecGovernorTest, ClearRewriteTripOnlyClearsRewriteTrips) {
  ExecBudget budget;
  budget.max_rewrite_nodes = 100;
  ExecGovernor gov(budget);
  EXPECT_TRUE(gov.ChargeRewriteNodes(100));  // exactly the budget is fine
  EXPECT_FALSE(gov.ChargeRewriteNodes(1));   // one more trips
  EXPECT_TRUE(gov.tripped());
  EXPECT_TRUE(gov.rewrite_tripped());
  // Clearing rewinds the counter so a fallback's own rewrites start fresh.
  EXPECT_TRUE(gov.ClearRewriteTrip());
  EXPECT_FALSE(gov.tripped());
  EXPECT_EQ(gov.rewrite_nodes_charged(), 0u);
  EXPECT_TRUE(gov.ChargeRewriteNodes(50));
  // A non-rewrite trip is not clearable.
  gov.Trip(StatusCode::kCancelled, "test cancel");
  EXPECT_FALSE(gov.ClearRewriteTrip());
  EXPECT_EQ(gov.status().code(), StatusCode::kCancelled);
}

TEST(ExecGovernorTest, AllowIndexBuildCapsByBaseRows) {
  ExecBudget budget;
  budget.max_index_build_rows = 100;
  ExecGovernor gov(budget);
  EXPECT_TRUE(gov.AllowIndexBuild(100));
  EXPECT_FALSE(gov.AllowIndexBuild(101));
  ExecGovernor unlimited;
  EXPECT_TRUE(unlimited.AllowIndexBuild(1u << 30));
  gov.Trip(StatusCode::kCancelled, "stop");
  EXPECT_FALSE(gov.AllowIndexBuild(1));  // tripped governors build nothing
}

TEST(ExecGovernorTest, ScopesNestAndShield) {
  EXPECT_EQ(CurrentGovernor(), nullptr);
  ExecGovernor outer;
  {
    GovernorScope outer_scope(&outer);
    EXPECT_EQ(CurrentGovernor(), &outer);
    ExecGovernor inner;
    {
      GovernorScope inner_scope(&inner);
      EXPECT_EQ(CurrentGovernor(), &inner);
      {
        GovernorScope shield(nullptr);  // shields an inner region
        EXPECT_EQ(CurrentGovernor(), nullptr);
        EXPECT_OK(GovernorCheck());
      }
      EXPECT_EQ(CurrentGovernor(), &inner);
    }
    EXPECT_EQ(CurrentGovernor(), &outer);
  }
  EXPECT_EQ(CurrentGovernor(), nullptr);
}

// ---------------------------------------------------------------------------
// Governed Execute: budget edges end to end.
// ---------------------------------------------------------------------------

Database SmallDb(const Schema& schema) {
  Database db(schema);
  HQL_CHECK(db.Set("R", Ints({{0, 10},
                              {1, 11},
                              {2, 12},
                              {3, 13},
                              {4, 14},
                              {5, 15},
                              {6, 16},
                              {7, 17}}))
                .ok());
  return db;
}

TEST(GovernedExecuteTest, TupleBudgetExactlyResultSizeSucceeds) {
  Schema schema = MakeSchema({{"R", 2}});
  Database db = SmallDb(schema);
  QueryPtr q = Sel(Ge(Col(0), Int(0)), Rel("R"));  // emits all 8 rows
  ASSERT_OK_AND_ASSIGN(Relation reference,
                       Execute(q, db, schema, Strategy::kDirect));
  ASSERT_EQ(reference.size(), 8u);

  PlannerOptions options;
  options.budget.max_tuples = 8;  // exactly the operator output: must pass
  ASSERT_OK_AND_ASSIGN(
      Relation out, Execute(q, db, schema, Strategy::kDirect, options));
  EXPECT_EQ(out, reference);

  ExecContext ctx;
  ExecContextScope scope(&ctx);
  options.budget.max_tuples = 7;  // one short: must trip, not truncate
  auto result = Execute(q, db, schema, Strategy::kDirect, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(ctx.Snapshot().governor_tuple_trips, 1u);
}

TEST(GovernedExecuteTest, DeadlineExpiresMidJoin) {
  Rng rng(23);
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 2000, 2, 100000)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 2000, 2, 100000)));
  // A 2000 x 2000 product: four million output tuples, far past any 1 ms
  // deadline. The governor must stop it cooperatively mid-kernel.
  QueryPtr q = X(Rel("R"), Rel("S"));
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  PlannerOptions options;
  options.budget.deadline_ms = 1;
  auto result = Execute(q, db, schema, Strategy::kDirect, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos);
  EXPECT_GE(ctx.Snapshot().governor_deadline_trips, 1u);
}

TEST(GovernedExecuteTest, CancelBeforeStartReturnsImmediately) {
  Schema schema = MakeSchema({{"R", 2}});
  Database db = SmallDb(schema);
  QueryPtr q = Sel(Ge(Col(0), Int(0)), Rel("R"));
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  PlannerOptions options;
  options.cancel_token = std::make_shared<CancelToken>();
  options.cancel_token->Cancel();
  auto result = Execute(q, db, schema, Strategy::kHybrid, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GE(ctx.Snapshot().governor_cancellations, 1u);
}

// Example 2.4's blow-up chain: the lazy route's rewrite trips the node
// budget; Execute must degrade along lazy -> hybrid -> eager and still
// return the exact eager result.
TEST(GovernedExecuteTest, RewriteBudgetTripsLazyAndFallsBack) {
  const int n = 8;
  BlowupSpec spec = BlowupChain(n);
  Database db(spec.schema);
  for (int i = 0; i <= n; ++i) {
    std::string name = "R" + std::to_string(i);
    size_t arity = spec.schema.ArityOf(name).value();
    Tuple t;
    for (size_t c = 0; c < arity; ++c) t.push_back(Value::Int(1));
    ASSERT_OK(db.Set(name, Relation::FromTuples(arity, {t})));
  }
  // The eager reference (HQL-2) and the unbudgeted lazy route agree.
  ASSERT_OK_AND_ASSIGN(Relation reference,
                       Execute(spec.query, db, spec.schema,
                               Strategy::kFilter2));
  ASSERT_EQ(reference.size(), 1u);

  ExecContext ctx;
  ExecContextScope scope(&ctx);
  PlannerOptions options;
  options.budget.max_rewrite_nodes = 200;  // far below the ~2^8 lazy tree
  ASSERT_OK_AND_ASSIGN(Relation out,
                       Execute(spec.query, db, spec.schema, Strategy::kLazy,
                               options));
  EXPECT_EQ(out, reference);  // bit-identical to the eager route
  ExecStats stats = ctx.Snapshot();
  EXPECT_GE(stats.governor_rewrite_trips, 1u);
  EXPECT_GE(stats.governor_lazy_fallbacks, 1u);
  EXPECT_EQ(stats.governor_tuple_trips, 0u);
  EXPECT_EQ(stats.governor_deadline_trips, 0u);
}

// Without any budget the same chain still evaluates lazily (no fallback) —
// the guard only engages when asked to.
TEST(GovernedExecuteTest, NoBudgetMeansNoFallback) {
  const int n = 6;
  BlowupSpec spec = BlowupChain(n);
  Database db(spec.schema);
  for (int i = 0; i <= n; ++i) {
    std::string name = "R" + std::to_string(i);
    size_t arity = spec.schema.ArityOf(name).value();
    Tuple t;
    for (size_t c = 0; c < arity; ++c) t.push_back(Value::Int(1));
    ASSERT_OK(db.Set(name, Relation::FromTuples(arity, {t})));
  }
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  ASSERT_OK_AND_ASSIGN(Relation lazy,
                       Execute(spec.query, db, spec.schema, Strategy::kLazy));
  ASSERT_OK_AND_ASSIGN(Relation eager,
                       Execute(spec.query, db, spec.schema,
                               Strategy::kFilter2));
  EXPECT_EQ(lazy, eager);
  EXPECT_EQ(ctx.Snapshot().governor_lazy_fallbacks, 0u);
}

TEST(GovernedExecuteTest, IndexBuildOverBudgetFallsBackToScans) {
  Rng rng(29);
  Schema schema = MakeSchema({{"R", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 500, 2, 100)));
  QueryPtr q = Sel(Eq(Col(0), Int(7)), Rel("R"));
  ASSERT_OK_AND_ASSIGN(Relation reference,
                       Execute(q, db, schema, Strategy::kDirect));

  IndexAdvisor advisor(/*build_threshold=*/1);
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  PlannerOptions options;
  options.index_mode = IndexMode::kAdvisor;
  options.index_advisor = &advisor;
  options.index_min_rows = 1;
  options.budget.max_index_build_rows = 100;  // R has 500 rows: degrade
  ASSERT_OK_AND_ASSIGN(
      Relation out, Execute(q, db, schema, Strategy::kLazy, options));
  EXPECT_EQ(out, reference);
  EXPECT_GE(ctx.Snapshot().governor_index_fallbacks, 1u);
}

// ---------------------------------------------------------------------------
// EvalAlternatives under governance.
// ---------------------------------------------------------------------------

TEST(GovernedAlternativesTest, BudgetTripsAreIsolatedPerAlternative) {
  Schema schema = MakeSchema({{"R", 2}});
  Database db = SmallDb(schema);
  QueryPtr q = Sel(Ge(Col(0), Int(0)), Rel("R"));  // 8 output tuples
  std::vector<HypoExprPtr> states = {nullptr, nullptr, nullptr};

  for (size_t threads : {size_t{1}, size_t{4}}) {
    AlternativesOptions options;
    options.strategy = Strategy::kDirect;
    options.num_threads = threads;
    options.planner.budget.max_tuples = 2;  // every alternative trips
    std::vector<Result<Relation>> partial =
        EvalAlternativesPartial(q, states, db, schema, options);
    ASSERT_EQ(partial.size(), 3u);
    for (const Result<Relation>& r : partial) {
      ASSERT_FALSE(r.ok());
      // A budget trip is this alternative's own outcome — it must never
      // cascade into a sibling's "cancelled before it ran".
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << "threads=" << threads << ": " << r.status().ToString();
    }
    // The aggregate call surfaces the trip, not a cancellation.
    auto all = EvalAlternatives(q, states, db, schema, options);
    ASSERT_FALSE(all.ok());
    EXPECT_EQ(all.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(GovernedAlternativesTest, CallerTokenCancelsWholeFamily) {
  Schema schema = MakeSchema({{"R", 2}});
  Database db = SmallDb(schema);
  QueryPtr q = Sel(Ge(Col(0), Int(0)), Rel("R"));
  std::vector<HypoExprPtr> states = {nullptr, nullptr};

  AlternativesOptions options;
  options.strategy = Strategy::kDirect;
  options.num_threads = 2;
  options.planner.cancel_token = std::make_shared<CancelToken>();
  options.planner.cancel_token->Cancel();
  std::vector<Result<Relation>> partial =
      EvalAlternativesPartial(q, states, db, schema, options);
  ASSERT_EQ(partial.size(), 2u);
  for (const Result<Relation>& r : partial) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  auto all = EvalAlternatives(q, states, db, schema, options);
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kCancelled);
}

TEST(GovernedAlternativesTest, UngovernedFamilyStillAgreesWithSerialLoop) {
  Rng rng(31);
  Schema schema = MakeSchema({{"R", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 64, 2, 40)));
  QueryPtr q = Sel(Ge(Col(0), Int(10)), Rel("R"));
  std::vector<HypoExprPtr> states;
  states.push_back(nullptr);
  states.push_back(Upd(Del("R", Sel(Lt(Col(0), Int(20)), Rel("R")))));
  states.push_back(Upd(Ins("R", Single(hql::testing::IntRow({99, 99})))));

  AlternativesOptions options;
  options.num_threads = 4;
  ASSERT_OK_AND_ASSIGN(std::vector<Relation> fanned,
                       EvalAlternatives(q, states, db, schema, options));
  ASSERT_EQ(fanned.size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    QueryPtr alt = states[i] == nullptr ? q : When(q, states[i]);
    ASSERT_OK_AND_ASSIGN(Relation serial,
                         Execute(alt, db, schema, Strategy::kHybrid));
    EXPECT_EQ(fanned[i], serial) << "alternative " << i;
  }
}

// Null queries reach every entry point as a clean InvalidArgument, never an
// abort (the robustness satellite for caller-reachable HQL_CHECKs).
TEST(NullQueryTest, EntryPointsReturnInvalidArgument) {
  Schema schema = MakeSchema({{"R", 2}});
  Database db = SmallDb(schema);
  QueryPtr null_query;
  auto exec = Execute(null_query, db, schema, Strategy::kHybrid);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument);

  std::vector<HypoExprPtr> states = {nullptr};
  auto alts = EvalAlternatives(null_query, states, db, schema);
  ASSERT_FALSE(alts.ok());
  EXPECT_EQ(alts.status().code(), StatusCode::kInvalidArgument);

  std::vector<Result<Relation>> partial =
      EvalAlternativesPartial(null_query, states, db, schema);
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(partial[0].status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hql
