#include "hql/slice.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "hql/reduce.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

TEST(SliceTest, AtomicForms) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  ASSERT_OK_AND_ASSIGN(Substitution s, Slice(Ins("R", Rel("S")), schema));
  EXPECT_TRUE(s.Get("R")->Equals(*U(Rel("R"), Rel("S"))));
  EXPECT_EQ(s.size(), 1u);

  ASSERT_OK_AND_ASSIGN(s, Slice(Del("R", Rel("S")), schema));
  EXPECT_TRUE(s.Get("R")->Equals(*Diff(Rel("R"), Rel("S"))));
}

TEST(SliceTest, Example38Sequence) {
  // slice(ins(R, Q1); del(S, sigma_p(R)))
  //   = {(R u Q1)/R, (S - sigma_p(R u Q1))/S}.
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}, {"Q1src", 1}});
  QueryPtr q1 = Rel("Q1src");
  ScalarExprPtr p = Gt(Col(0), Int(5));
  UpdatePtr u = Seq(Ins("R", q1), Del("S", Sel(p, Rel("R"))));
  ASSERT_OK_AND_ASSIGN(Substitution s, Slice(u, schema));
  EXPECT_TRUE(s.Get("R")->Equals(*U(Rel("R"), q1)));
  EXPECT_TRUE(
      s.Get("S")->Equals(*Diff(Rel("S"), Sel(p, U(Rel("R"), q1)))));
}

TEST(SliceTest, Lemma39ApplySliceEqualsExec) {
  // apply(DB, slice(U)) == [U](DB) on random updates and states.
  Rng rng(13);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;  // slice requires pure RA arguments
  options.allow_cond = true;   // exercise the Section 6 encoding too
  for (int trial = 0; trial < 250; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, options.literal_domain);
    UpdatePtr u = RandomUpdate(&rng, schema, options);
    ASSERT_OK_AND_ASSIGN(Substitution s, Slice(u, schema));
    ASSERT_OK_AND_ASSIGN(Database via_subst, ApplySubstitution(s, db));
    ASSERT_OK_AND_ASSIGN(Database via_exec, ExecUpdate(u, db));
    EXPECT_EQ(via_subst, via_exec) << u->ToString();
  }
}

TEST(SliceTest, Theorem310WhenEqualsSubstitutionInstance) {
  // [Q when {U}](DB) == [sub(Q, slice(U))](DB).
  Rng rng(17);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  for (int trial = 0; trial < 250; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, options.literal_domain);
    UpdatePtr u = RandomUpdate(&rng, schema, options);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);

    ASSERT_OK_AND_ASSIGN(Relation hypothetical,
                         EvalDirect(Query::When(q, Upd(u)), db));
    ASSERT_OK_AND_ASSIGN(Substitution s, Slice(u, schema));
    ASSERT_OK_AND_ASSIGN(Relation substituted, EvalDirect(s.Apply(q), db));
    EXPECT_EQ(hypothetical, substituted) << u->ToString();
  }
}

TEST(SliceTest, GuardQuerySemantics) {
  Schema schema = MakeSchema({{"R", 2}, {"C", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", testing::Ints({{1, 2}, {3, 4}})));

  QueryPtr guarded = GuardQuery(Rel("R"), 2, Rel("C"));

  // C empty: guard is empty.
  ASSERT_OK_AND_ASSIGN(Relation empty_case, EvalDirect(guarded, db));
  EXPECT_TRUE(empty_case.empty());

  // C non-empty: guard equals R.
  ASSERT_OK(db.Set("C", testing::Ints({{7}, {8}})));
  ASSERT_OK_AND_ASSIGN(Relation full_case, EvalDirect(guarded, db));
  EXPECT_EQ(full_case, db.GetRef("R"));
}

TEST(SliceTest, ConditionalBothBranches) {
  Schema schema = MakeSchema({{"R", 1}, {"C", 1}});
  UpdatePtr cond = If(Rel("C"), Ins("R", Single({Value::Int(100)})),
                      Del("R", Single({Value::Int(1)})));
  ASSERT_OK_AND_ASSIGN(Substitution s, Slice(cond, schema));

  Database db(schema);
  ASSERT_OK(db.Set("R", testing::Ints({{1}, {2}})));

  // Guard false: the delete branch runs.
  ASSERT_OK_AND_ASSIGN(Database else_db, ApplySubstitution(s, db));
  EXPECT_EQ(else_db.GetRef("R"), testing::Ints({{2}}));

  // Guard true: the insert branch runs.
  ASSERT_OK(db.Set("C", testing::Ints({{0}})));
  ASSERT_OK_AND_ASSIGN(Database then_db, ApplySubstitution(s, db));
  EXPECT_EQ(then_db.GetRef("R"), testing::Ints({{1}, {2}, {100}}));
}

TEST(SliceTest, SequencesComposeLeftToRight) {
  // ins then del of the same tuple leaves it out; del then ins leaves it in.
  Schema schema = MakeSchema({{"R", 1}});
  QueryPtr t = Single({Value::Int(5)});
  Database db(schema);

  ASSERT_OK_AND_ASSIGN(Substitution ins_del,
                       Slice(Seq(Ins("R", t), Del("R", t)), schema));
  ASSERT_OK_AND_ASSIGN(Database db1, ApplySubstitution(ins_del, db));
  EXPECT_TRUE(db1.GetRef("R").empty());

  ASSERT_OK_AND_ASSIGN(Substitution del_ins,
                       Slice(Seq(Del("R", t), Ins("R", t)), schema));
  ASSERT_OK_AND_ASSIGN(Database db2, ApplySubstitution(del_ins, db));
  EXPECT_EQ(db2.GetRef("R").size(), 1u);
}

}  // namespace
}  // namespace hql
