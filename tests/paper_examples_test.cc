// End-to-end reproductions of the paper's worked examples, checked
// mechanically: the derivations of Section 2 carried out by the library's
// own rewrite machinery.

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/metrics.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "hql/enf.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "hql/rewrite_when.h"
#include "opt/planner.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

// The recurring cast: R and S of arity 2 with attribute A = column 0.
class PaperExamplesTest : public ::testing::Test {
 protected:
  Schema schema_ = MakeSchema({{"R", 2}, {"S", 2}});

  // {ins(R, sigma[A >= 30](S))}.
  HypoExprPtr InsGe30() {
    return Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S"))));
  }
  // {ins(R, sigma[A > 30](S))}.
  HypoExprPtr InsGt30() {
    return Upd(Ins("R", Sel(Gt(Col(0), Int(30)), Rel("S"))));
  }
  // {del(S, sigma[A < 60](S))}.
  HypoExprPtr DelLt60() {
    return Upd(Del("S", Sel(Lt(Col(0), Int(60)), Rel("S"))));
  }

  QueryPtr RJoinS() { return Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")); }
};

TEST_F(PaperExamplesTest, Example21bQueryOneIsEmpty) {
  // Query (1):
  //   [ ((R join S) when {ins(R, sigma[A>=30](S))})
  //     - ((R join S) when {ins(R, sigma[A>30](S))}) ]
  //   when {del(S, sigma[A<60](S))}
  // The lazy analysis shows it is the empty query, without touching data.
  QueryPtr query1 = When(
      Diff(When(RJoinS(), InsGe30()), When(RJoinS(), InsGt30())),
      DelLt60());

  ASSERT_OK_AND_ASSIGN(QueryPtr reduced, Reduce(query1, schema_));
  ASSERT_OK_AND_ASSIGN(QueryPtr simplified, SimplifyRa(reduced, schema_));
  EXPECT_EQ(simplified->kind(), QueryKind::kEmpty)
      << "expected the static derivation of Example 2.1(b) to reach the "
         "empty query, got: "
      << simplified->ToString();

  // Sanity: the value is indeed empty in concrete states...
  Rng rng(201);
  for (int trial = 0; trial < 20; ++trial) {
    Database db(schema_);
    ASSERT_OK(db.Set("R", GenRelation(&rng, 30, 2, 100)));
    ASSERT_OK(db.Set("S", GenRelation(&rng, 30, 2, 100)));
    ASSERT_OK_AND_ASSIGN(Relation out, EvalDirect(query1, db));
    EXPECT_TRUE(out.empty());
  }
}

TEST_F(PaperExamplesTest, Example21bWithoutOuterUpdateIsNonEmpty) {
  // Without the outer del, the two inner states differ on A = 30 rows, so
  // the difference can be non-empty — the outer update is what collapses it.
  QueryPtr no_outer =
      Diff(When(RJoinS(), InsGe30()), When(RJoinS(), InsGt30()));
  Database db(schema_);
  // S has an A=30 row that joins with itself once inserted into R.
  ASSERT_OK(db.Set("S", testing::Ints({{30, 7}})));
  ASSERT_OK_AND_ASSIGN(Relation out, EvalDirect(no_outer, db));
  EXPECT_FALSE(out.empty());
}

TEST_F(PaperExamplesTest, Example22aComposedSubstitution) {
  // (Q when {ins(R, sigma[A>=30](S))}) when {del(S, sigma[A<60](S))}
  // composes (replace-nested-when + compute-composition + algebraic
  // simplification) into
  //   Q when {sigma[A>=60](S)/S, R u sigma[A>=60](S)/R}.
  QueryPtr q = When(When(RJoinS(), InsGe30()), DelLt60());

  // replace-nested-when: outer state first.
  QueryPtr nested = equiv::ReplaceNestedWhen(q);
  ASSERT_NE(nested, nullptr);

  // Convert both update states to explicit substitutions and compose.
  const HypoExprPtr& comp = nested->state();
  ASSERT_EQ(comp->kind(), HypoKind::kCompose);
  HypoExprPtr e_del = equiv::ConvertToExplicit(comp->first());
  HypoExprPtr e_ins = equiv::ConvertToExplicit(comp->second());
  ASSERT_NE(e_del, nullptr);
  ASSERT_NE(e_ins, nullptr);
  HypoExprPtr composed =
      equiv::ComputeComposition(HypoExpr::Compose(e_del, e_ins));
  ASSERT_NE(composed, nullptr);
  ASSERT_EQ(composed->kind(), HypoKind::kSubst);

  // Algebraic simplification of the bindings gives the paper's final form.
  ASSERT_OK_AND_ASSIGN(QueryPtr s_binding,
                       SimplifyRa(composed->BindingFor("S"), schema_));
  EXPECT_TRUE(s_binding->Equals(*Sel(Ge(Col(0), Int(60)), Rel("S"))))
      << s_binding->ToString();
  ASSERT_OK_AND_ASSIGN(QueryPtr r_binding,
                       SimplifyRa(composed->BindingFor("R"), schema_));
  EXPECT_TRUE(
      r_binding->Equals(*U(Rel("R"), Sel(Ge(Col(0), Int(60)), Rel("S")))))
      << r_binding->ToString();

  // The composed substitution is equivalent to the original nested query.
  QueryPtr rebuilt = When(RJoinS(), composed);
  Rng rng(203);
  for (int trial = 0; trial < 20; ++trial) {
    Database db(schema_);
    ASSERT_OK(db.Set("R", GenRelation(&rng, 25, 2, 100)));
    ASSERT_OK(db.Set("S", GenRelation(&rng, 25, 2, 100)));
    ASSERT_OK_AND_ASSIGN(Relation a, EvalDirect(q, db));
    ASSERT_OK_AND_ASSIGN(Relation b, EvalDirect(rebuilt, db));
    EXPECT_EQ(a, b);
  }
}

TEST_F(PaperExamplesTest, Example23BindingRemoval) {
  // {ins(R, sigma_p(S)); del(S, sigma_q(R)); ins(T, pi_x(R))} asked of
  // queries that never mention S: the S-slice drops from the composed
  // substitution.
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}, {"T", 2}});
  UpdatePtr u = Seq(Ins("R", Sel(Gt(Col(0), Int(3)), Rel("S"))),
                    Del("S", Sel(Lt(Col(0), Int(9)), Rel("R"))),
                    Ins("T", Proj({0, 0}, Rel("R"))));
  QueryPtr body = U(Rel("R"), Rel("T"));  // no S anywhere
  QueryPtr q = When(body, Upd(u));

  ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema));
  ASSERT_EQ(enf->state()->kind(), HypoKind::kSubst);
  EXPECT_EQ(enf->state()->bindings().size(), 3u);  // R, S, T all sliced

  QueryPtr trimmed = equiv::SubstSimplify(enf);
  ASSERT_NE(trimmed, nullptr);
  EXPECT_EQ(trimmed->state()->bindings().size(), 2u);
  EXPECT_EQ(trimmed->state()->BindingFor("S"), nullptr);

  // Equivalence is preserved.
  Rng rng(207);
  for (int trial = 0; trial < 20; ++trial) {
    Database db(schema);
    ASSERT_OK(db.Set("R", GenRelation(&rng, 20, 2, 12)));
    ASSERT_OK(db.Set("S", GenRelation(&rng, 20, 2, 12)));
    ASSERT_OK(db.Set("T", GenRelation(&rng, 20, 2, 12)));
    ASSERT_OK_AND_ASSIGN(Relation a, EvalDirect(q, db));
    ASSERT_OK_AND_ASSIGN(Relation b, EvalDirect(trimmed, db));
    EXPECT_EQ(a, b);
  }
}

TEST_F(PaperExamplesTest, Example24aExponentialBlowup) {
  // The lazy rewrite's tree size doubles per chain step while the HQL
  // query and its DAG stay linear.
  double previous = 0;
  for (int n = 1; n <= 12; ++n) {
    BlowupSpec spec = BlowupChain(n);
    ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(spec.query, spec.schema));
    double tree = TreeSize(red);
    if (n > 1) EXPECT_GE(tree, 2 * previous * 0.9);
    previous = tree;
    EXPECT_LE(DagSize(spec.query), 8u * static_cast<uint64_t>(n));
  }
}

TEST_F(PaperExamplesTest, Example24bRewritingAvoidsBlowup) {
  // With E_j = R_j - R_j, the chain is the empty query; the RA rewriter
  // discovers it from the reduction.
  BlowupSpec spec = BlowupChainWithDifference(8, 4);
  ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(spec.query, spec.schema));
  ASSERT_OK_AND_ASSIGN(QueryPtr simplified, SimplifyRa(red, spec.schema));
  EXPECT_EQ(simplified->kind(), QueryKind::kEmpty);

  Database db(spec.schema);
  ASSERT_OK_AND_ASSIGN(Relation out, EvalDirect(spec.query, db));
  EXPECT_TRUE(out.empty());
}

TEST_F(PaperExamplesTest, Example24cEagerEvaluatesSmallValues) {
  // Even when the lazy rewrite is exponential in size, the eager
  // algorithms evaluate the chain directly; with singleton base relations
  // every strategy agrees.
  int n = 6;
  BlowupSpec spec = BlowupChain(n);
  Database db(spec.schema);
  for (int i = 0; i <= n; ++i) {
    size_t arity = spec.schema.ArityOf("R" + std::to_string(i)).value();
    Tuple t;
    for (size_t c = 0; c < arity; ++c) t.push_back(Value::Int(1));
    ASSERT_OK(
        db.Set("R" + std::to_string(i), Relation::FromTuples(arity, {t})));
  }
  ASSERT_OK_AND_ASSIGN(Relation direct,
                       Execute(spec.query, db, spec.schema,
                               Strategy::kDirect));
  EXPECT_EQ(direct.size(), 1u);
  for (Strategy s : {Strategy::kFilter1, Strategy::kFilter2,
                     Strategy::kHybrid}) {
    ASSERT_OK_AND_ASSIGN(Relation out,
                         Execute(spec.query, db, spec.schema, s));
    EXPECT_EQ(out, direct) << StrategyName(s);
  }
}

TEST_F(PaperExamplesTest, Example21TreeOfAlternatives) {
  // Q = ((Q1 when eta1) - (Q2 when eta2)) when eta3: the framework
  // evaluates it identically under every strategy.
  HypoExprPtr eta1 = InsGe30();
  HypoExprPtr eta2 = InsGt30();
  HypoExprPtr eta3 = DelLt60();
  QueryPtr q =
      When(Diff(When(RJoinS(), eta1), When(RJoinS(), eta2)), eta3);

  Rng rng(211);
  Database db(schema_);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 40, 2, 100)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 40, 2, 100)));
  ASSERT_OK_AND_ASSIGN(Relation reference,
                       Execute(q, db, schema_, Strategy::kDirect));
  for (Strategy s : {Strategy::kLazy, Strategy::kFilter1, Strategy::kFilter2,
                     Strategy::kFilter3, Strategy::kHybrid}) {
    ASSERT_OK_AND_ASSIGN(Relation out, Execute(q, db, schema_, s));
    EXPECT_EQ(out, reference) << StrategyName(s);
  }
}

}  // namespace
}  // namespace hql
