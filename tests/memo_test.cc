#include "eval/memo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "ast/builders.h"
#include "ast/query.h"
#include "common/thread_pool.h"
#include "eval/direct.h"
#include "eval/materialize.h"
#include "eval/ra_eval.h"
#include "opt/planner.h"
#include "tests/test_util.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

std::shared_ptr<const Relation> Cached(Relation r) {
  return std::make_shared<const Relation>(std::move(r));
}

TEST(MemoCacheTest, LookupMissThenHit) {
  MemoCache cache;
  EXPECT_EQ(cache.Lookup(42), nullptr);
  cache.Insert(42, Cached(Ints({{1, 2}})));
  std::shared_ptr<const Relation> hit = cache.Lookup(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, Ints({{1, 2}}));

  MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.cached_tuples, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(MemoCacheTest, InsertOverwritesExistingKey) {
  MemoCache cache;
  cache.Insert(7, Cached(Ints({{1, 1}})));
  cache.Insert(7, Cached(Ints({{2, 2}, {3, 3}})));
  std::shared_ptr<const Relation> hit = cache.Lookup(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, Ints({{2, 2}, {3, 3}}));
  MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.cached_tuples, 2u);
}

TEST(MemoCacheTest, EvictsLeastRecentlyUsed) {
  MemoCache cache(/*capacity=*/2);
  cache.Insert(1, Cached(Ints({{1, 1}})));
  cache.Insert(2, Cached(Ints({{2, 2}})));
  // Touch 1 so that 2 becomes the LRU entry.
  ASSERT_NE(cache.Lookup(1), nullptr);
  cache.Insert(3, Cached(Ints({{3, 3}})));

  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(MemoCacheTest, ZeroCapacityDisablesCaching) {
  MemoCache cache(/*capacity=*/0);
  cache.Insert(1, Cached(Ints({{1, 1}})));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(MemoCacheTest, ClearDropsEntriesButKeepsCounters) {
  MemoCache cache;
  cache.Insert(1, Cached(Ints({{1, 1}})));
  ASSERT_NE(cache.Lookup(1), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup(1), nullptr);
  MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.cached_tuples, 0u);
  EXPECT_EQ(stats.hits, 1u);  // counters survive Clear
  cache.ResetStats();
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(QueryFingerprintTest, StructurallyEqualTreesAgree) {
  // Two independently built, structurally identical trees must collide —
  // that is what lets one alternative's subplan serve another's.
  QueryPtr a = Sel(Gt(Col(0), Int(5)), Join(Eq(Col(0), Col(2)), Rel("R"),
                                            Rel("S")));
  QueryPtr b = Sel(Gt(Col(0), Int(5)), Join(Eq(Col(0), Col(2)), Rel("R"),
                                            Rel("S")));
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());
  // Repeated calls are stable (the value is cached).
  EXPECT_EQ(a->Fingerprint(), a->Fingerprint());
}

TEST(QueryFingerprintTest, DistinguishesStructure) {
  EXPECT_NE(Rel("R")->Fingerprint(), Rel("S")->Fingerprint());
  EXPECT_NE(Sel(Gt(Col(0), Int(5)), Rel("R"))->Fingerprint(),
            Sel(Gt(Col(0), Int(6)), Rel("R"))->Fingerprint());
  EXPECT_NE(U(Rel("R"), Rel("S"))->Fingerprint(),
            U(Rel("S"), Rel("R"))->Fingerprint());
}

TEST(FingerprintStateTest, TracksDatabaseContent) {
  Schema schema = MakeSchema({{"R", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1, 2}})));
  uint64_t before = FingerprintState(db);
  EXPECT_EQ(before, FingerprintState(db));  // deterministic

  Database db2 = db;
  ASSERT_OK(db2.Set("R", Ints({{1, 2}, {3, 4}})));
  EXPECT_NE(before, FingerprintState(db2));
}

TEST(MemoEvalTest, MutatedStateIsNotServedStaleResults) {
  // The stale-entry scenario: evaluate with a memo, mutate the database,
  // evaluate again with the same cache. The second evaluation must see the
  // new data — the old entry's key embeds the old content fingerprint, so
  // it is unreachable.
  Schema schema = MakeSchema({{"R", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1, 10}, {2, 20}})));
  QueryPtr query = Sel(Gt(Col(0), Int(1)), Rel("R"));
  MemoCache cache;
  DatabaseResolver resolver(db);

  EvalMemo memo{&cache, FingerprintState(db)};
  ASSERT_OK_AND_ASSIGN(Relation first, EvalRa(query, resolver, memo));
  EXPECT_EQ(first, Ints({{2, 20}}));
  // Warm: the same query under the same state is a pure hit.
  uint64_t hits_before = cache.stats().hits;
  ASSERT_OK_AND_ASSIGN(Relation warm, EvalRa(query, resolver, memo));
  EXPECT_EQ(warm, first);
  EXPECT_GT(cache.stats().hits, hits_before);

  ASSERT_OK(db.Set("R", Ints({{1, 10}, {2, 20}, {5, 50}})));
  EvalMemo memo2{&cache, FingerprintState(db)};
  ASSERT_OK_AND_ASSIGN(Relation second, EvalRa(query, resolver, memo2));
  EXPECT_EQ(second, Ints({{2, 20}, {5, 50}}));
}

TEST(MemoEvalTest, ExecuteWithMemoMatchesExecuteWithout) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1, 10}, {2, 20}, {3, 30}})));
  ASSERT_OK(db.Set("S", Ints({{2, 200}, {3, 300}, {4, 400}})));
  QueryPtr query = When(Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")),
                        Upd(Ins("R", Sel(Gt(Col(0), Int(2)), Rel("S")))));

  MemoCache cache;
  PlannerOptions with_memo;
  with_memo.memo = &cache;
  for (Strategy s : {Strategy::kLazy, Strategy::kHybrid}) {
    ASSERT_OK_AND_ASSIGN(Relation plain, Execute(query, db, schema, s));
    ASSERT_OK_AND_ASSIGN(Relation memoized,
                         Execute(query, db, schema, s, with_memo));
    EXPECT_EQ(plain, memoized) << StrategyName(s);
  }
}

TEST(MemoEvalTest, EvalStateMemoMatchesEvalStateAndHitsOnReuse) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1, 10}})));
  ASSERT_OK(db.Set("S", Ints({{2, 20}, {3, 30}})));
  HypoExprPtr state = Comp(Upd(Ins("R", Rel("S"))),
                           Upd(Del("S", Sel(Gt(Col(0), Int(2)), Rel("S")))));

  ASSERT_OK_AND_ASSIGN(Database plain, EvalState(state, db));
  MemoCache cache;
  ASSERT_OK_AND_ASSIGN(Database memoized, EvalStateMemo(state, db, &cache));
  ASSERT_OK_AND_ASSIGN(Relation plain_r, plain.Get("R"));
  ASSERT_OK_AND_ASSIGN(Relation memo_r, memoized.Get("R"));
  ASSERT_OK_AND_ASSIGN(Relation plain_s, plain.Get("S"));
  ASSERT_OK_AND_ASSIGN(Relation memo_s, memoized.Get("S"));
  EXPECT_EQ(plain_r, memo_r);
  EXPECT_EQ(plain_s, memo_s);

  // Second materialization of the same state over the same content is
  // served from the cache.
  uint64_t hits_before = cache.stats().hits;
  ASSERT_OK_AND_ASSIGN(Database again, EvalStateMemo(state, db, &cache));
  ASSERT_OK_AND_ASSIGN(Relation again_r, again.Get("R"));
  EXPECT_EQ(again_r, memo_r);
  EXPECT_GT(cache.stats().hits, hits_before);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool survives Wait: submit more.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, ConcurrentCacheAccessIsSafe) {
  MemoCache cache(/*capacity=*/16);
  ThreadPool pool(4);
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        uint64_t key = static_cast<uint64_t>((t * 7 + i) % 32);
        if (cache.Lookup(key) == nullptr) {
          cache.Insert(key, Cached(Ints({{i, t}})));
        }
      }
    });
  }
  pool.Wait();
  MemoCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 16u);
  EXPECT_EQ(stats.hits + stats.misses, 8u * 200u);
}

}  // namespace
}  // namespace hql
