#include "opt/session.h"

#include <gtest/gtest.h>

#include <vector>

#include "ast/builders.h"
#include "ast/query.h"
#include "common/rng.h"
#include "eval/memo.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/version_tree.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

Database MakeDb(uint64_t seed, size_t rows) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Rng rng(seed);
  Database db(schema);
  HQL_CHECK(db.Set("R", GenRelation(&rng, rows, 2, 100)).ok());
  HQL_CHECK(db.Set("S", GenRelation(&rng, rows, 2, 100)).ok());
  return db;
}

// The Example 2.1 shape: one shared edge, several leaves below it.
std::vector<HypoExprPtr> TreeStates(int leaves) {
  VersionTree tree;
  VersionTree::NodeId shared = tree.AddChild(
      VersionTree::kRoot, "shared",
      Comp(Upd(Ins("R", Sel(Gt(Col(0), Int(50)), Rel("S")))),
           Upd(Del("S", Sel(Lt(Col(0), Int(20)), Rel("S"))))));
  std::vector<HypoExprPtr> states;
  states.push_back(nullptr);  // the root itself: the real database
  for (int i = 0; i < leaves; ++i) {
    VersionTree::NodeId leaf = tree.AddChild(
        shared, "alt" + std::to_string(i),
        Upd(Del("R", Sel(And(Ge(Col(0), Int(i * 10)),
                             Lt(Col(0), Int(i * 10 + 10))),
                         Rel("R")))));
    states.push_back(tree.PathState(leaf));
  }
  return states;
}

std::vector<Relation> SerialReference(const QueryPtr& query,
                                      const std::vector<HypoExprPtr>& states,
                                      const Database& db, const Schema& schema,
                                      Strategy strategy) {
  std::vector<Relation> out;
  for (const HypoExprPtr& s : states) {
    QueryPtr q = s == nullptr ? query : Query::When(query, s);
    Result<Relation> r = Execute(q, db, schema, strategy);
    HQL_CHECK(r.ok());
    out.push_back(std::move(r).value());
  }
  return out;
}

TEST(EvalAlternativesTest, MatchesSerialLoopAcrossStrategiesAndThreads) {
  Database db = MakeDb(11, 60);
  const Schema& schema = db.schema();
  std::vector<HypoExprPtr> states = TreeStates(5);
  QueryPtr query = Sel(Ge(Col(0), Int(30)), Rel("R"));

  for (Strategy strategy :
       {Strategy::kDirect, Strategy::kLazy, Strategy::kFilter2,
        Strategy::kHybrid}) {
    std::vector<Relation> expected =
        SerialReference(query, states, db, schema, strategy);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      AlternativesOptions options;
      options.strategy = strategy;
      options.num_threads = threads;
      ASSERT_OK_AND_ASSIGN(
          std::vector<Relation> got,
          EvalAlternatives(query, states, db, schema, options));
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << StrategyName(strategy) << " threads=" << threads
            << " alternative=" << i;
      }
    }
  }
}

TEST(EvalAlternativesTest, SharedMemoCacheDoesNotChangeResults) {
  Database db = MakeDb(13, 80);
  const Schema& schema = db.schema();
  std::vector<HypoExprPtr> states = TreeStates(6);
  QueryPtr query = Sel(Ge(Col(0), Int(10)), Rel("R"));

  std::vector<Relation> expected =
      SerialReference(query, states, db, schema, Strategy::kLazy);
  MemoCache cache;
  AlternativesOptions options;
  options.strategy = Strategy::kLazy;
  options.num_threads = 4;
  options.planner.memo = &cache;
  // Twice through the same cache: cold then warm.
  for (int round = 0; round < 2; ++round) {
    ASSERT_OK_AND_ASSIGN(
        std::vector<Relation> got,
        EvalAlternatives(query, states, db, schema, options));
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "round=" << round << " alt=" << i;
    }
  }
  // The family shares a path prefix, so the cache must actually be used.
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(EvalAlternativesTest, EmptyFamilyAndDefaults) {
  Database db = MakeDb(17, 10);
  const Schema& schema = db.schema();
  QueryPtr query = Rel("R");
  ASSERT_OK_AND_ASSIGN(std::vector<Relation> got,
                       EvalAlternatives(query, {}, db, schema));
  EXPECT_TRUE(got.empty());
}

TEST(EvalAlternativesTest, FirstErrorByInputOrderWins) {
  Database db = MakeDb(19, 10);
  const Schema& schema = db.schema();
  // Alternative 1 and 3 reference an unknown relation; the reported error
  // must be alternative 1's regardless of completion order.
  std::vector<HypoExprPtr> states = {
      nullptr,
      Upd(Ins("R", Rel("NoSuchA"))),
      nullptr,
      Upd(Ins("R", Rel("NoSuchB"))),
  };
  QueryPtr query = Rel("R");
  AlternativesOptions options;
  options.num_threads = 4;
  Result<std::vector<Relation>> got =
      EvalAlternatives(query, states, db, schema, options);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().ToString().find("NoSuchA"), std::string::npos)
      << got.status().ToString();
}

}  // namespace
}  // namespace hql
