// Robustness and consistency sweeps: parser fuzzing (never crash, only
// parse or report an error), printer fixpoints, and hash/equality
// consistency on random ASTs.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ast/builders.h"
#include "ast/hypo.h"
#include "ast/query.h"
#include "common/rng.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  // Grammar-ish token soup: most inputs are invalid; the parser must
  // return InvalidArgument, never crash or hang.
  const std::vector<std::string> vocab = {
      "R",    "S",     "sigma", "pi",    "gamma", "when", "union", "isect",
      "x",    "join",  "ins",   "del",   "if",    "then", "else",  "and",
      "or",   "not",   "true",  "false", "null",  "empty", "count", "sum",
      "(",    ")",     "[",     "]",     "{",     "}",    ",",     ";",
      "/",    "#",     "-",     "+",     "*",     "<",    "<=",    ">",
      ">=",   "=",     "!=",    "$0",    "$1",    "0",    "1",     "42",
      "3.5",  "'ab'",
  };
  Rng rng(997);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.Uniform(1, 14));
    for (int i = 0; i < len; ++i) {
      input += vocab[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(vocab.size()) - 1))];
      input += " ";
    }
    auto q = ParseQuery(input);
    if (q.ok()) {
      ++parsed_ok;
      // Whatever parsed must round-trip.
      auto again = ParseQuery(q.value()->ToString());
      ASSERT_TRUE(again.ok()) << input << " -> " << q.value()->ToString();
      EXPECT_TRUE(again.value()->Equals(*q.value()));
    } else {
      EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << input;
    }
    // Exercise the other entry points on the same soup.
    (void)ParseUpdate(input);
    (void)ParseHypo(input);
    (void)ParseScalarExpr(input);
  }
  // Some soup is valid ("R", "R union S", ...): sanity that the generator
  // is not trivially rejecting everything.
  EXPECT_GT(parsed_ok, 3);
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(1009);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.Uniform(0, 40));
    for (int i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(32, 126)));
    }
    (void)ParseQuery(input);
    (void)ParseUpdate(input);
    (void)ParseHypo(input);
    (void)ParseScalarExpr(input);
  }
}

TEST(HashConsistencyTest, EqualAstsHashEqual) {
  Rng rng(1013);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;
  for (int trial = 0; trial < 300; ++trial) {
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    // Re-parse the printed form: structurally equal, so hashes must match.
    ASSERT_OK_AND_ASSIGN(QueryPtr clone, ParseQuery(q->ToString()));
    ASSERT_TRUE(clone->Equals(*q));
    EXPECT_EQ(clone->Hash(), q->Hash()) << q->ToString();
  }
}

TEST(HashConsistencyTest, DistinctAstsMostlyHashDistinct) {
  // Not a correctness requirement, but a sanity check against degenerate
  // hashing: 300 random distinct queries should produce near-300 hashes.
  Rng rng(1019);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  std::set<uint64_t> hashes;
  std::vector<QueryPtr> queries;
  for (int trial = 0; trial < 300; ++trial) {
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    bool duplicate = false;
    for (const QueryPtr& other : queries) {
      if (other->Equals(*q)) duplicate = true;
    }
    if (duplicate) continue;
    queries.push_back(q);
    hashes.insert(q->Hash());
  }
  EXPECT_GE(hashes.size() + 3, queries.size());
}

TEST(PrinterFixpointTest, PrintParsePrintIsStable) {
  Rng rng(1021);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 4;
  options.allow_cond = true;
  options.allow_aggregate = true;
  for (int trial = 0; trial < 200; ++trial) {
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    std::string once = q->ToString();
    ASSERT_OK_AND_ASSIGN(QueryPtr parsed, ParseQuery(once));
    EXPECT_EQ(parsed->ToString(), once);
  }
}

}  // namespace
}  // namespace hql
