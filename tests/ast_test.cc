#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/hypo.h"
#include "ast/metrics.h"
#include "ast/query.h"
#include "ast/typecheck.h"
#include "ast/update.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::IntRow;
using ::hql::testing::MakeSchema;

TEST(QueryAstTest, KindsAndAccessors) {
  QueryPtr q = Sel(Gt(Col(0), Int(3)), Rel("R"));
  EXPECT_EQ(q->kind(), QueryKind::kSelect);
  EXPECT_EQ(q->left()->rel_name(), "R");
  EXPECT_TRUE(q->is_unary());
  EXPECT_FALSE(q->is_binary_algebra());

  QueryPtr j = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  EXPECT_TRUE(j->is_binary_algebra());
  EXPECT_EQ(j->left()->rel_name(), "R");
  EXPECT_EQ(j->right()->rel_name(), "S");

  QueryPtr e = Empty(3);
  EXPECT_EQ(e->empty_arity(), 3u);
}

TEST(QueryAstTest, StructuralEquality) {
  QueryPtr a = U(Rel("R"), Sel(Gt(Col(0), Int(3)), Rel("S")));
  QueryPtr b = U(Rel("R"), Sel(Gt(Col(0), Int(3)), Rel("S")));
  QueryPtr c = U(Rel("R"), Sel(Gt(Col(0), Int(4)), Rel("S")));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_EQ(a->Hash(), b->Hash());
}

TEST(QueryAstTest, WhenEquality) {
  HypoExprPtr h1 = Upd(Ins("R", Rel("S")));
  HypoExprPtr h2 = Upd(Ins("R", Rel("S")));
  HypoExprPtr h3 = Upd(Del("R", Rel("S")));
  EXPECT_TRUE(When(Rel("R"), h1)->Equals(*When(Rel("R"), h2)));
  EXPECT_FALSE(When(Rel("R"), h1)->Equals(*When(Rel("R"), h3)));
}

TEST(QueryAstTest, ToStringRoundsTheGrammar) {
  QueryPtr q = When(
      Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")),
      Upd(Seq(Ins("R", Sel(Gt(Col(0), Int(30)), Rel("S"))),
              Del("S", Sel(Lt(Col(0), Int(60)), Rel("S"))))));
  EXPECT_EQ(q->ToString(),
            "((R join[($0 = $2)] S) when {ins(R, sigma[($0 > 30)](S)); "
            "del(S, sigma[($0 < 60)](S))})");
}

TEST(QueryAstTest, SubstBindingsSortedByName) {
  HypoExprPtr h = Sub({Binding{"S", Rel("R")}, Binding{"A", Rel("R")}});
  ASSERT_EQ(h->bindings().size(), 2u);
  EXPECT_EQ(h->bindings()[0].rel_name, "A");
  EXPECT_EQ(h->bindings()[1].rel_name, "S");
  EXPECT_NE(h->BindingFor("S"), nullptr);
  EXPECT_EQ(h->BindingFor("Z"), nullptr);
}

TEST(UpdateAstTest, AtomicSequenceDetection) {
  UpdatePtr atomic = Seq(Ins("R", Rel("S")), Del("S", Rel("R")));
  EXPECT_TRUE(atomic->IsAtomicSequence());
  UpdatePtr cond = If(Rel("R"), Ins("R", Rel("S")), Del("R", Rel("S")));
  EXPECT_FALSE(cond->IsAtomicSequence());
  EXPECT_FALSE(Seq(atomic, cond)->IsAtomicSequence());
}

// ---------------------------------------------------------------------------
// Typecheck.
// ---------------------------------------------------------------------------

TEST(TypecheckTest, InfersArity) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}, {"T", 3}});
  ASSERT_OK_AND_ASSIGN(size_t a, InferQueryArity(Rel("T"), schema));
  EXPECT_EQ(a, 3u);
  ASSERT_OK_AND_ASSIGN(a, InferQueryArity(X(Rel("R"), Rel("T")), schema));
  EXPECT_EQ(a, 5u);
  ASSERT_OK_AND_ASSIGN(a, InferQueryArity(Proj({0, 0, 1}, Rel("R")), schema));
  EXPECT_EQ(a, 3u);
  ASSERT_OK_AND_ASSIGN(
      a, InferQueryArity(When(Rel("R"), Upd(Ins("R", Rel("S")))), schema));
  EXPECT_EQ(a, 2u);
}

TEST(TypecheckTest, RejectsArityMismatches) {
  Schema schema = MakeSchema({{"R", 2}, {"T", 3}});
  EXPECT_EQ(InferQueryArity(U(Rel("R"), Rel("T")), schema).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(InferQueryArity(Rel("Nope"), schema).status().code(),
            StatusCode::kNotFound);
  // Predicate out of range.
  EXPECT_EQ(
      InferQueryArity(Sel(Gt(Col(5), Int(1)), Rel("R")), schema).status()
          .code(),
      StatusCode::kTypeError);
  // Projection out of range.
  EXPECT_EQ(InferQueryArity(Proj({2}, Rel("R")), schema).status().code(),
            StatusCode::kTypeError);
  // Join predicate beyond concatenation.
  EXPECT_EQ(InferQueryArity(Join(Eq(Col(0), Col(5)), Rel("R"), Rel("T")),
                            schema)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST(TypecheckTest, ChecksUpdatesAndStates) {
  Schema schema = MakeSchema({{"R", 2}, {"T", 3}});
  EXPECT_OK(CheckUpdate(Ins("R", Rel("R")), schema));
  EXPECT_EQ(CheckUpdate(Ins("R", Rel("T")), schema).code(),
            StatusCode::kTypeError);
  EXPECT_OK(CheckHypo(Sub1(Rel("R"), "R"), schema));
  EXPECT_EQ(CheckHypo(Sub1(Rel("T"), "R"), schema).code(),
            StatusCode::kTypeError);
  // Conditional guards may have any arity.
  EXPECT_OK(CheckUpdate(If(Rel("T"), Ins("R", Rel("R")), Del("R", Rel("R"))),
                        schema));
  // The binding of a when-state is checked too.
  EXPECT_EQ(InferQueryArity(When(Rel("R"), Sub1(Rel("T"), "R")), schema)
                .status()
                .code(),
            StatusCode::kTypeError);
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST(MetricsTest, TreeAndDagSizes) {
  QueryPtr r = Rel("R");
  QueryPtr shared = U(r, r);  // R shared twice
  EXPECT_EQ(TreeSize(shared), 3.0);
  EXPECT_EQ(DagSize(shared), 2u);  // union node + one shared R node
}

TEST(MetricsTest, WhenDepth) {
  QueryPtr q0 = Rel("R");
  EXPECT_EQ(WhenDepth(q0), 0u);
  QueryPtr q1 = When(q0, Sub1(Rel("S"), "R"));
  EXPECT_EQ(WhenDepth(q1), 1u);
  QueryPtr q2 = When(q1, Sub1(Rel("S"), "R"));
  EXPECT_EQ(WhenDepth(q2), 2u);
  // Nesting inside a binding counts as well.
  QueryPtr q3 = When(Rel("R"), Sub1(q1, "R"));
  EXPECT_EQ(WhenDepth(q3), 2u);
}

TEST(MetricsTest, CountRelOccurrences) {
  QueryPtr q = U(Rel("R"), X(Rel("R"), Rel("S")));
  EXPECT_EQ(CountRelOccurrences(q, "R"), 2.0);
  EXPECT_EQ(CountRelOccurrences(q, "S"), 1.0);
  EXPECT_EQ(CountRelOccurrences(q, "T"), 0.0);
  // Occurrences inside states count.
  QueryPtr w = When(Rel("S"), Upd(Ins("S", Rel("R"))));
  EXPECT_EQ(CountRelOccurrences(w, "R"), 1.0);
}

TEST(MetricsTest, IsPureRelAlg) {
  EXPECT_TRUE(IsPureRelAlg(U(Rel("R"), Rel("S"))));
  EXPECT_FALSE(IsPureRelAlg(When(Rel("R"), Sub1(Rel("S"), "R"))));
}

TEST(MetricsTest, BlowupChainIsLinearButDeep) {
  for (int n = 1; n <= 8; ++n) {
    BlowupSpec spec = BlowupChain(n);
    // The HQL query grows linearly in n...
    EXPECT_LE(TreeSize(spec.query), 10.0 * n + 10.0);
    EXPECT_EQ(WhenDepth(spec.query), static_cast<size_t>(n));
    ASSERT_OK_AND_ASSIGN(size_t arity,
                         InferQueryArity(spec.query, spec.schema));
    EXPECT_EQ(arity, static_cast<size_t>(1) << n);
  }
}

}  // namespace
}  // namespace hql
