#include "opt/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "eval/direct.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

Schema SmallSchema() { return MakeSchema({{"emp", 2}, {"dept", 2}}); }

Database SmallDb() {
  Database db(SmallSchema());
  HQL_CHECK(db.Set("emp", Ints({{1, 10}, {2, 10}, {3, 20}})).ok());
  HQL_CHECK(db.Set("dept", Ints({{10, 100}, {20, 200}})).ok());
  return db;
}

QueryPtr Q(const std::string& text) {
  auto q = ParseQuery(text);
  HQL_CHECK_MSG(q.ok(), q.status().ToString().c_str());
  return q.value();
}

HypoExprPtr H(const std::string& text) {
  auto h = ParseHypo(text);
  HQL_CHECK_MSG(h.ok(), h.status().ToString().c_str());
  return h.value();
}

// ---------------------------------------------------------------------------
// EngineOptions

TEST(EngineOptionsTest, ProfilesAreValidAndDistinct) {
  for (const std::string& name : EngineOptions::ProfileNames()) {
    ASSERT_OK_AND_ASSIGN(EngineOptions o, EngineOptions::Profile(name));
    EXPECT_OK(o.Validate()) << name;
  }
  ASSERT_OK_AND_ASSIGN(EngineOptions fast, EngineOptions::Profile("fast"));
  EXPECT_EQ(fast.index_mode, IndexMode::kAdvisor);
  EXPECT_EQ(fast.columnar_mode, ColumnarMode::kAuto);
  EXPECT_EQ(fast.incremental_mode, IncrementalMode::kAuto);
  EXPECT_TRUE(fast.budget.unlimited());

  ASSERT_OK_AND_ASSIGN(EngineOptions safe, EngineOptions::Profile("safe"));
  EXPECT_EQ(safe.index_mode, IndexMode::kOff);
  EXPECT_FALSE(safe.budget.unlimited());

  ASSERT_OK_AND_ASSIGN(EngineOptions allon, EngineOptions::Profile("all-on"));
  EXPECT_EQ(allon.columnar_mode, ColumnarMode::kAuto);
  EXPECT_FALSE(allon.budget.unlimited());

  EXPECT_FALSE(EngineOptions::Profile("turbo").ok());
}

TEST(EngineOptionsTest, SetParsesEveryKnob) {
  EngineOptions o;
  EXPECT_OK(o.Set("strategy", "filter3"));
  EXPECT_EQ(o.strategy, Strategy::kFilter3);
  EXPECT_OK(o.Set("memo", "off"));
  EXPECT_FALSE(o.memo);
  EXPECT_OK(o.Set("index", "advisor"));
  EXPECT_EQ(o.index_mode, IndexMode::kAdvisor);
  EXPECT_OK(o.Set("columnar", "auto"));
  EXPECT_EQ(o.columnar_mode, ColumnarMode::kAuto);
  EXPECT_OK(o.Set("incremental", "auto"));
  EXPECT_EQ(o.incremental_mode, IncrementalMode::kAuto);
  EXPECT_OK(o.Set("reuse_count", "4"));
  EXPECT_EQ(o.reuse_count, 4.0);
  EXPECT_OK(o.Set("delta_fraction", "0.5"));
  EXPECT_EQ(o.delta_fraction_threshold, 0.5);
  EXPECT_OK(o.Set("edit_fraction", "0.25"));
  EXPECT_OK(o.Set("index_min_rows", "8"));
  EXPECT_EQ(o.index_min_rows, 8u);
  EXPECT_OK(o.Set("columnar_min_rows", "128"));
  EXPECT_OK(o.Set("morsel_rows", "1024"));
  EXPECT_OK(o.Set("columnar_threads", "1"));
  EXPECT_OK(o.Set("deadline_ms", "500"));
  EXPECT_EQ(o.budget.deadline_ms, 500);
  EXPECT_OK(o.Set("max_tuples", "1000"));
  EXPECT_EQ(o.budget.max_tuples, 1000u);
  EXPECT_OK(o.Set("max_rewrite_nodes", "2000"));
  EXPECT_OK(o.Set("max_sessions", "7"));
  EXPECT_EQ(o.max_sessions, 7u);
  EXPECT_OK(o.Validate());
}

TEST(EngineOptionsTest, SetRejectsBadInput) {
  EngineOptions o;
  EXPECT_FALSE(o.Set("strategy", "warp").ok());
  EXPECT_FALSE(o.Set("memo", "sideways").ok());
  EXPECT_FALSE(o.Set("delta_fraction", "1.5").ok());
  EXPECT_FALSE(o.Set("morsel_rows", "0").ok());
  EXPECT_FALSE(o.Set("max_tuples", "-3").ok());
  EXPECT_FALSE(o.Set("max_tuples", "many").ok());
  EXPECT_FALSE(o.Set("no_such_knob", "1").ok());
  // Failed sets leave the options untouched and valid.
  EXPECT_OK(o.Validate());
  EXPECT_EQ(o.strategy, Strategy::kHybrid);
}

TEST(EngineOptionsTest, ProfileKnobKeepsMaxSessions) {
  EngineOptions o;
  EXPECT_OK(o.Set("max_sessions", "3"));
  EXPECT_OK(o.Set("profile", "all-on"));
  EXPECT_EQ(o.max_sessions, 3u);
  EXPECT_EQ(o.columnar_mode, ColumnarMode::kAuto);
}

TEST(EngineOptionsTest, DescribeRoundTripsThroughSet) {
  ASSERT_OK_AND_ASSIGN(EngineOptions o, EngineOptions::Profile("all-on"));
  std::string desc = o.Describe();
  EXPECT_NE(desc.find("strategy=hybrid"), std::string::npos);
  EXPECT_NE(desc.find("index=advisor"), std::string::npos);
  // Every key=value token in Describe() parses back through Set (except
  // engine-composition keys Set also accepts).
  size_t pos = 0;
  EngineOptions parsed;
  while (pos < desc.size()) {
    size_t end = desc.find(' ', pos);
    if (end == std::string::npos) end = desc.size();
    std::string token = desc.substr(pos, end - pos);
    pos = end + 1;
    size_t eq = token.find('=');
    ASSERT_NE(eq, std::string::npos) << token;
    EXPECT_OK(parsed.Set(token.substr(0, eq), token.substr(eq + 1))) << token;
  }
  EXPECT_EQ(parsed.strategy, o.strategy);
  EXPECT_EQ(parsed.budget.max_tuples, o.budget.max_tuples);
}

TEST(EngineOptionsTest, ToPlannerOptionsWiresCachesOnlyWhenEnabled) {
  MemoCache memo(16);
  IndexAdvisor advisor;
  IncrementalCache inc(16);
  EngineOptions o;
  o.memo = false;
  PlannerOptions p = o.ToPlannerOptions(&memo, &advisor, &inc);
  EXPECT_EQ(p.memo, nullptr);
  EXPECT_EQ(p.index_advisor, nullptr);
  EXPECT_EQ(p.incremental_cache, nullptr);

  o.memo = true;
  o.index_mode = IndexMode::kAdvisor;
  o.incremental_mode = IncrementalMode::kAuto;
  p = o.ToPlannerOptions(&memo, &advisor, &inc);
  EXPECT_EQ(p.memo, &memo);
  EXPECT_EQ(p.index_advisor, &advisor);
  EXPECT_EQ(p.incremental_cache, &inc);
}

// ---------------------------------------------------------------------------
// Engine administration

TEST(EngineTest, DeclareSetApplySnapshot) {
  Engine engine(SmallSchema());
  EXPECT_EQ(engine.base_version(), 0u);
  ASSERT_OK(engine.SetRelation("emp", Ints({{1, 10}, {2, 20}})));
  ASSERT_OK(engine.DeclareRelation("bonus", 1));
  EXPECT_TRUE(engine.schema().HasRelation("bonus"));
  // The widened schema kept the old contents.
  ASSERT_OK_AND_ASSIGN(Relation emp, engine.Snapshot().Get("emp"));
  EXPECT_EQ(emp.size(), 2u);

  ASSERT_OK_AND_ASSIGN(UpdatePtr upd, ParseUpdate("ins(bonus, {(7)})"));
  ASSERT_OK(engine.Apply(upd));
  ASSERT_OK_AND_ASSIGN(Relation bonus, engine.Snapshot().Get("bonus"));
  EXPECT_EQ(bonus.size(), 1u);
  EXPECT_EQ(engine.base_version(), 3u);

  EXPECT_FALSE(engine.DeclareRelation("emp", 3).ok());
  EXPECT_FALSE(engine.SetRelation("ghost", Ints({{1}})).ok());
}

TEST(EngineTest, SessionAdmissionCap) {
  EngineOptions opts;
  opts.max_sessions = 2;
  Engine engine(SmallDb(), opts);
  ASSERT_OK_AND_ASSIGN(SessionPtr a, engine.CreateSession("a"));
  ASSERT_OK_AND_ASSIGN(SessionPtr b, engine.CreateSession("b"));
  EXPECT_EQ(engine.live_sessions(), 2u);
  auto c = engine.CreateSession("c");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Closing a session frees the slot.
  b.reset();
  EXPECT_EQ(engine.live_sessions(), 1u);
  EXPECT_OK(engine.CreateSession("c").status());
}

// ---------------------------------------------------------------------------
// Session scenario trees

TEST(SessionFacadeTest, DeriveQueryMatchesDirectSemantics) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  ASSERT_OK(s->Derive("root", "hire", H("{ins(emp, {(4, 20)})}")));
  ASSERT_OK(s->Derive("hire", "fire", H("{del(emp, {(1, 10)})}")));

  QueryPtr q = Q("emp");
  ASSERT_OK_AND_ASSIGN(Relation at_root, s->Query("root", q));
  EXPECT_EQ(at_root.size(), 3u);
  ASSERT_OK_AND_ASSIGN(Relation at_hire, s->Query("hire", q));
  EXPECT_EQ(at_hire.size(), 4u);
  ASSERT_OK_AND_ASSIGN(Relation at_fire, s->Query("fire", q));
  EXPECT_EQ(at_fire.size(), 3u);

  // Reference: direct evaluation of the composed when-query.
  ASSERT_OK_AND_ASSIGN(
      Relation reference,
      EvalDirect(Q("emp when ({ins(emp, {(4, 20)})} # {del(emp, {(1, 10)})})"),
                 SmallDb()));
  EXPECT_EQ(at_fire, reference);
}

TEST(SessionFacadeTest, TreeOpsValidate) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  HypoExprPtr edge = H("{ins(emp, {(9, 10)})}");
  ASSERT_OK(s->Derive("root", "a", edge));
  EXPECT_EQ(s->Derive("root", "a", edge).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(s->Derive("ghost", "b", edge).code(), StatusCode::kNotFound);
  EXPECT_FALSE(s->Derive("root", "", edge).ok());
  EXPECT_FALSE(s->Derive("root", "b", H("{ins(ghost, {(1)})}")).ok());
  EXPECT_FALSE(s->Edit("root", edge).ok());
  EXPECT_FALSE(s->Drop("root").ok());
  EXPECT_EQ(s->Drop("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(s->Query("ghost", Q("emp")).status().code(), StatusCode::kNotFound);
}

TEST(SessionFacadeTest, EditInvalidatesDescendants) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  ASSERT_OK(s->Derive("root", "a", H("{ins(emp, {(4, 20)})}")));
  ASSERT_OK(s->Derive("a", "b", H("{ins(emp, {(5, 20)})}")));
  ASSERT_OK_AND_ASSIGN(Database at_b, s->StateAt("b"));
  ASSERT_OK_AND_ASSIGN(Relation emp_b, at_b.Get("emp"));
  EXPECT_EQ(emp_b.size(), 5u);

  // Rewriting a's edge changes what b sees.
  ASSERT_OK(s->Edit("a", H("{del(emp, emp)}")));
  ASSERT_OK_AND_ASSIGN(Relation emp_b2, s->Query("b", Q("emp")));
  EXPECT_EQ(emp_b2.size(), 1u);
  ASSERT_OK_AND_ASSIGN(Database at_b2, s->StateAt("b"));
  ASSERT_OK_AND_ASSIGN(Relation state_b2, at_b2.Get("emp"));
  EXPECT_EQ(emp_b2, state_b2);
}

TEST(SessionFacadeTest, DropRemovesSubtree) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  ASSERT_OK(s->Derive("root", "a", H("{ins(emp, {(4, 20)})}")));
  ASSERT_OK(s->Derive("a", "b", H("{ins(emp, {(5, 20)})}")));
  ASSERT_OK(s->Derive("root", "c", H("{del(emp, {(1, 10)})}")));
  EXPECT_EQ(s->NumNodes(), 4u);
  ASSERT_OK(s->Drop("a"));
  EXPECT_EQ(s->NumNodes(), 2u);
  EXPECT_EQ(s->Query("b", Q("emp")).status().code(), StatusCode::kNotFound);
  // The freed names are reusable.
  ASSERT_OK(s->Derive("c", "a", H("{ins(emp, {(6, 20)})}")));
  std::vector<ScenarioInfo> nodes = s->Nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].name, "root");
  EXPECT_EQ(nodes[1].name, "a");
  EXPECT_EQ(nodes[1].parent, "c");
}

TEST(SessionFacadeTest, CompareIsTheExampleDifference) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  ASSERT_OK(s->Derive("root", "hire", H("{ins(emp, {(4, 20)})}")));
  ASSERT_OK_AND_ASSIGN(Relation diff, s->Compare("hire", "root", Q("emp")));
  EXPECT_EQ(diff, Ints({{4, 20}}));
  ASSERT_OK_AND_ASSIGN(Relation none, s->Compare("root", "hire", Q("emp")));
  EXPECT_TRUE(none.empty());
}

TEST(SessionFacadeTest, SnapshotIsolationFromEngineAndSiblings) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr a, engine.CreateSession("a"));
  ASSERT_OK_AND_ASSIGN(SessionPtr b, engine.CreateSession("b"));
  ASSERT_OK(a->Derive("root", "x", H("{del(emp, emp)}")));

  // A sibling's scenarios and a base commit are both invisible.
  ASSERT_OK_AND_ASSIGN(UpdatePtr upd, ParseUpdate("ins(emp, {(9, 90)})"));
  ASSERT_OK(engine.Apply(upd));
  ASSERT_OK_AND_ASSIGN(Relation b_emp, b->Query("root", Q("emp")));
  EXPECT_EQ(b_emp.size(), 3u);
  EXPECT_EQ(b->NumNodes(), 1u);

  // Refresh adopts the new base.
  ASSERT_OK(b->Refresh());
  ASSERT_OK_AND_ASSIGN(Relation b_emp2, b->Query("root", Q("emp")));
  EXPECT_EQ(b_emp2.size(), 4u);
  EXPECT_EQ(b->snapshot_version(), engine.base_version());

  // Session a still reads its original snapshot.
  ASSERT_OK_AND_ASSIGN(Relation a_emp, a->Query("root", Q("emp")));
  EXPECT_EQ(a_emp.size(), 3u);
}

TEST(SessionFacadeTest, RefreshWithSchemaChangeNeedsBareTree) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  ASSERT_OK(s->Derive("root", "a", H("{ins(emp, {(4, 20)})}")));
  ASSERT_OK(engine.DeclareRelation("bonus", 1));
  EXPECT_FALSE(s->Refresh().ok());
  ASSERT_OK(s->Drop("a"));
  ASSERT_OK(s->Refresh());
  EXPECT_TRUE(s->BaseSnapshot().schema().HasRelation("bonus"));
}

TEST(SessionFacadeTest, AllStrategiesAgreeOnTheTree) {
  Rng rng(20260808);
  Schema schema = PropertySchema();
  Database db = RandomDatabase(&rng, schema, 8, 8);
  Engine engine(db);
  AstGenOptions gen;
  gen.max_depth = 3;

  ASSERT_OK_AND_ASSIGN(SessionPtr reference, engine.CreateSession());
  for (int trial = 0; trial < 10; ++trial) {
    ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
    std::vector<std::string> names = {"root"};
    for (int n = 0; n < 4; ++n) {
      std::string child = "n" + std::to_string(n);
      const std::string& parent =
          names[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(names.size()) - 1))];
      ASSERT_OK(s->Derive(parent, child, RandomHypo(&rng, schema, gen)));
      names.push_back(child);
    }
    QueryPtr q = RandomQuery(&rng, schema, 2, gen);
    const std::string& at =
        names[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(names.size()) - 1))];
    ASSERT_OK(s->SetProfile("default"));
    ASSERT_OK(s->Set("strategy", "direct"));
    auto expect = s->Query(at, q);
    for (const char* strategy :
         {"lazy", "filter1", "filter2", "filter3", "hybrid"}) {
      ASSERT_OK(s->Set("strategy", strategy));
      auto got = s->Query(at, q);
      ASSERT_EQ(got.ok(), expect.ok()) << strategy;
      if (got.ok()) {
        ASSERT_EQ(got.value(), expect.value()) << strategy;
      }
    }
  }
}

TEST(SessionFacadeTest, GovernorBudgetRejectsBlowups) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  ASSERT_OK(s->Set("max_tuples", "4"));
  // The selection emits 9 tuples > 4 (bare products are view-backed and
  // uncharged; selections charge every produced tuple).
  auto r = s->Query("root", Q("sigma[$0 >= 0](emp x emp)"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Recovery: lifting the budget makes the same query run.
  ASSERT_OK(s->Set("max_tuples", "0"));
  ASSERT_OK_AND_ASSIGN(Relation big,
                       s->Query("root", Q("sigma[$0 >= 0](emp x emp)")));
  EXPECT_EQ(big.size(), 9u);
  EXPECT_GE(s->Stats().governor_tuple_trips, 1u);
}

TEST(SessionFacadeTest, CancelTripsInFlightAndFutureQueries) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  s->Cancel();
  EXPECT_TRUE(s->cancelled());
  auto r = s->Query("root", Q("emp"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(SessionFacadeTest, AnalyzeReportsTheSessionConfig) {
  Engine engine(SmallDb());
  ASSERT_OK_AND_ASSIGN(SessionPtr s, engine.CreateSession());
  ASSERT_OK(s->Derive("root", "hire", H("{ins(emp, {(4, 20)})}")));
  ASSERT_OK_AND_ASSIGN(AnalyzeReport report, s->Analyze("hire", Q("emp")));
  EXPECT_EQ(report.actual_rows, 4u);
  EXPECT_FALSE(report.exec.route.empty());
  // The analyzed execution's charges roll up into the session stats.
  EXPECT_FALSE(s->Stats().route.empty());
}

TEST(SessionFacadeTest, ConcurrentSessionsShareNothingObservable) {
  Engine engine(SmallDb());
  constexpr int kThreads = 8;
  std::vector<SessionPtr> sessions;
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_OK_AND_ASSIGN(SessionPtr s,
                         engine.CreateSession("t" + std::to_string(i)));
    sessions.push_back(std::move(s));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Session& s = *sessions[static_cast<size_t>(i)];
      std::string mine = "mine" + std::to_string(i);
      HypoExprPtr edge =
          H("{ins(emp, {(" + std::to_string(100 + i) + ", 10)})}");
      if (!s.Derive("root", mine, edge).ok()) ++failures;
      for (int round = 0; round < 20; ++round) {
        auto r = s.Query(mine, Q("emp"));
        if (!r.ok() || r.value().size() != 4u) ++failures;
        auto base = s.Query("root", Q("emp"));
        if (!base.ok() || base.value().size() != 3u) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace hql
