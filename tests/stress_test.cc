// Tests for the differential stress harness, the phased workload driver,
// and the replay-capsule pipeline (workload/stress.h, workload/driver.h).
//
// The headline acceptance test is ReplayReproducesInjectedFailure: an
// intentionally corrupted result must flow through failure -> capsule ->
// JSON -> fresh-process-equivalent replay and reproduce bit-identically
// (StressFailure equality includes the result hashes in the detail text).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/failpoint.h"
#include "tests/test_util.h"
#include "workload/driver.h"
#include "workload/stress.h"

namespace hql {
namespace {

StressConfig SmallMixed(uint64_t seed, int ops_per_phase,
                        double chaos_probability = 0.05) {
  StressConfig config =
      StressConfig::Mixed(seed, ops_per_phase, chaos_probability);
  config.base_rows = 12;
  return config;
}

// Two harnesses over the same config must produce identical reports —
// the bedrock the capsule format stands on.
TEST(StressHarnessTest, DeterministicAcrossRuns) {
  StressConfig config = SmallMixed(/*seed=*/101, /*ops_per_phase=*/30);
  StressHarness a(config);
  StressHarness b(config);
  for (int i = 0; i < config.TotalOps(); ++i) {
    a.RunOp(i);
    b.RunOp(i);
  }
  EXPECT_EQ(a.report().ops_run, b.report().ops_run);
  EXPECT_EQ(a.report().ops_by_kind, b.report().ops_by_kind);
  EXPECT_EQ(a.report().oracle_runs, b.report().oracle_runs);
  EXPECT_EQ(a.report().ok_runs, b.report().ok_runs);
  EXPECT_EQ(a.report().clean_errors, b.report().clean_errors);
  ASSERT_EQ(a.report().failures.size(), b.report().failures.size());
  for (size_t i = 0; i < a.report().failures.size(); ++i) {
    EXPECT_EQ(a.report().failures[i], b.report().failures[i]);
  }
  EXPECT_EQ(a.scenario_count(), b.scenario_count());
}

// The main differential soak: a mixed run across all five phases — every
// op checked across all six strategies x sampled mode combos, with chaos
// and budgets armed in the later phases — must end with zero failures.
TEST(StressHarnessTest, MixedSoakAllStrategiesAgree) {
  StressConfig config = SmallMixed(/*seed=*/202, /*ops_per_phase=*/60);
  StressHarness harness(config);
  for (int i = 0; i < config.TotalOps(); ++i) {
    bool ok = harness.RunOp(i);
    if (!ok) {
      FAIL() << harness.report().failures.back().ToString();
    }
  }
  const StressReport& report = harness.report();
  EXPECT_EQ(report.ops_run, config.TotalOps());
  EXPECT_GT(report.oracle_runs, 0u);
  EXPECT_GT(report.ok_runs, 0u);
  // Every op kind in the mix must actually have been sampled.
  for (int k = 0; k < kNumStressOpKinds; ++k) {
    double weight_anywhere = 0;
    for (const StressPhase& p : config.phases) {
      weight_anywhere += p.weights[static_cast<size_t>(k)];
    }
    if (weight_anywhere > 0) {
      EXPECT_GT(report.ops_by_kind[static_cast<size_t>(k)], 0u)
          << "kind never sampled: "
          << StressOpKindName(static_cast<StressOpKind>(k));
    }
  }
  EXPECT_GT(harness.scenario_count(), 1u);
#ifndef NDEBUG
  // Chaos + budget phases should actually exercise the clean-error path
  // when failpoints are compiled in.
  EXPECT_GT(report.clean_errors, 0u);
#endif
}

TEST(StressConfigTest, JsonRoundTripIsStable) {
  StressConfig config = SmallMixed(/*seed=*/0xDEADBEEFCAFEULL,
                                   /*ops_per_phase=*/25, /*chaos=*/0.125);
  config.inject_mismatch_after = 17;
  std::string json = config.ToJson();
  ASSERT_OK_AND_ASSIGN(JsonPtr parsed, ParseJson(json));
  ASSERT_OK_AND_ASSIGN(StressConfig back, StressConfig::FromJson(*parsed));
  // Serialize -> parse -> serialize must be a fixed point (numbers print
  // exactly; the u64 seed rides as a string).
  EXPECT_EQ(back.ToJson(), json);
  EXPECT_EQ(back.seed, config.seed);
  EXPECT_EQ(back.base_rows, config.base_rows);
  EXPECT_EQ(back.inject_mismatch_after, 17);
  ASSERT_EQ(back.phases.size(), config.phases.size());
  for (size_t i = 0; i < back.phases.size(); ++i) {
    EXPECT_EQ(back.phases[i].label, config.phases[i].label);
    EXPECT_EQ(back.phases[i].weights, config.phases[i].weights);
    EXPECT_DOUBLE_EQ(back.phases[i].chaos_probability,
                     config.phases[i].chaos_probability);
  }
}

TEST(StressConfigTest, FromJsonRejectsGarbage) {
  ASSERT_OK_AND_ASSIGN(JsonPtr no_phases, ParseJson("{\"seed\": \"3\"}"));
  EXPECT_FALSE(StressConfig::FromJson(*no_phases).ok());
  EXPECT_FALSE(ReplayCapsule::FromJsonText("{\"format\": \"other\"}").ok());
  EXPECT_FALSE(ReplayCapsule::FromJsonText("not json at all").ok());
}

// The acceptance-criterion test: an intentionally-armed failure must
// produce a capsule whose replay reproduces the failure bit-identically,
// surviving a JSON round trip through a file on the way.
TEST(ReplayCapsuleTest, ReplayReproducesInjectedFailure) {
  StressConfig config = SmallMixed(/*seed=*/303, /*ops_per_phase=*/20);
  config.inject_mismatch_after = 30;

  DriverOptions options;
  options.stop_on_failure = true;
  options.shrink = true;
  options.shrink_max_runs = 64;
  options.capsule_dir = ::testing::TempDir();
  WorkloadDriver driver(config, options);
  DriverResult result = driver.Run();

  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.capsules.size(), 1u);
  const ReplayCapsule& capsule = result.capsules.front();
  EXPECT_EQ(capsule.failure.strategy, "lazy");
  EXPECT_GE(capsule.failure.op_index, config.inject_mismatch_after);
  // Shrinking must never drop the failing op.
  ASSERT_FALSE(capsule.included_ops.empty());
  EXPECT_EQ(capsule.included_ops.back(), capsule.failure.op_index);

  // Reload from the file the driver wrote (full JSON round trip).
  ASSERT_EQ(result.capsule_paths.size(), 1u);
  ASSERT_OK_AND_ASSIGN(ReplayCapsule reloaded,
                       WorkloadDriver::LoadCapsuleFile(
                           result.capsule_paths.front()));
  EXPECT_EQ(reloaded.ToJson(), capsule.ToJson());
  EXPECT_EQ(reloaded.failure, capsule.failure);

  ASSERT_OK_AND_ASSIGN(ReplayOutcome outcome,
                       WorkloadDriver::Replay(reloaded));
  EXPECT_TRUE(outcome.reproduced) << outcome.summary;
  std::remove(result.capsule_paths.front().c_str());
}

// The greedy shrinker must produce a strictly smaller op list that still
// reproduces, and the shrunk capsule must itself replay.
TEST(ReplayCapsuleTest, ShrinkerMinimizesFailingSequence) {
  StressConfig config = SmallMixed(/*seed=*/404, /*ops_per_phase=*/20);
  config.inject_mismatch_after = 50;

  DriverOptions options;
  options.stop_on_failure = true;
  options.shrink = false;  // shrink explicitly below, to compare sizes
  WorkloadDriver driver(config, options);
  DriverResult result = driver.Run();
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.capsules.size(), 1u);
  const ReplayCapsule& full = result.capsules.front();
  ASSERT_GT(full.included_ops.size(), 1u);

  int runs_used = 0;
  ReplayCapsule shrunk = WorkloadDriver::Shrink(full, /*max_runs=*/128,
                                                &runs_used);
  EXPECT_GT(runs_used, 0);
  EXPECT_LT(shrunk.included_ops.size(), full.included_ops.size());
  EXPECT_EQ(shrunk.failure, full.failure);
  ASSERT_OK_AND_ASSIGN(ReplayOutcome outcome, WorkloadDriver::Replay(shrunk));
  EXPECT_TRUE(outcome.reproduced) << outcome.summary;
}

// A clean run must produce no capsules, touch every phase, and report
// metrics consistent with the harness totals.
TEST(WorkloadDriverTest, CleanRunReportsPhaseMetrics) {
  StressConfig config = SmallMixed(/*seed=*/505, /*ops_per_phase=*/25);
  DriverOptions options;
  int phases_seen = 0;
  options.on_phase = [&](const PhaseMetrics&) { ++phases_seen; };
  WorkloadDriver driver(config, options);
  DriverResult result = driver.Run();
  EXPECT_TRUE(result.ok())
      << result.report.failures.front().ToString();
  EXPECT_TRUE(result.capsules.empty());
  EXPECT_FALSE(result.time_limited);
  EXPECT_EQ(phases_seen, static_cast<int>(config.phases.size()));
  ASSERT_EQ(result.phases.size(), config.phases.size());
  int ops_total = 0;
  uint64_t oracle_total = 0;
  for (const PhaseMetrics& m : result.phases) {
    EXPECT_EQ(m.ops, 25);
    ops_total += m.ops;
    oracle_total += m.oracle_runs;
  }
  EXPECT_EQ(ops_total, result.report.ops_run);
  EXPECT_EQ(oracle_total, result.report.oracle_runs);
}

// Chaos arming covers the whole registered-site catalog: a dedicated
// chaos-only phase at a high fire probability must surface clean governed
// errors (Debug builds), and never a failure.
TEST(StressHarnessTest, ChaosPhaseStaysCleanAtHighProbability) {
  StressConfig config;
  config.seed = 606;
  config.base_rows = 12;
  StressPhase phase;
  phase.label = "chaos-heavy";
  phase.ops = 80;
  phase.chaos_probability = 0.2;
  phase.budget_probability = 0.3;
  config.phases = {phase};

  StressHarness harness(config);
  for (int i = 0; i < config.TotalOps(); ++i) {
    bool ok = harness.RunOp(i);
    if (!ok) {
      FAIL() << harness.report().failures.back().ToString();
    }
  }
#ifndef NDEBUG
  EXPECT_GT(harness.report().clean_errors, 0u);
  EXPECT_GE(RegisteredFailPointSites().size(), 7u);
#endif
  EXPECT_GT(harness.report().ok_runs, 0u);
}

}  // namespace
}  // namespace hql
