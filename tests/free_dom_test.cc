#include "hql/free_dom.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "tests/test_util.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT

TEST(FreeDomTest, PureQueryFreeNames) {
  QueryPtr q = U(Rel("R"), Sel(Gt(Col(0), Int(3)), X(Rel("S"), Rel("R"))));
  EXPECT_EQ(FreeNames(q), (NameSet{"R", "S"}));
  EXPECT_EQ(FreeNames(Empty(2)), NameSet{});
  EXPECT_EQ(FreeNames(Single({Value::Int(1)})), NameSet{});
}

TEST(FreeDomTest, UpdateFigure2) {
  // free(ins(R, Q)) = {R} u free(Q): the atomic update reads its target's
  // old value (R := R u Q). This deliberately strengthens the paper's
  // Figure 2, which omits R — see the free_dom.h header for why the
  // literal reading is unsound for binding removal.
  UpdatePtr ins = Ins("R", Rel("S"));
  EXPECT_EQ(FreeNames(ins), (NameSet{"R", "S"}));
  EXPECT_EQ(DomNames(ins), NameSet{"R"});

  UpdatePtr del = Del("T", Rel("T"));
  EXPECT_EQ(FreeNames(del), NameSet{"T"});
  EXPECT_EQ(DomNames(del), NameSet{"T"});

  // free((U1;U2)) = free(U1) u (free(U2) - dom(U1)).
  UpdatePtr seq = Seq(Ins("R", Rel("S")), Del("T", Rel("R")));
  // U2's read of R resolves against U1's write, but U1 itself reads R,
  // and U2 reads its own target T.
  EXPECT_EQ(FreeNames(seq), (NameSet{"R", "S", "T"}));
  EXPECT_EQ(DomNames(seq), (NameSet{"R", "T"}));

  UpdatePtr seq2 = Seq(Del("T", Rel("R")), Ins("R", Rel("S")));
  EXPECT_EQ(FreeNames(seq2), (NameSet{"R", "S", "T"}));
}

TEST(FreeDomTest, HypoFigure2) {
  HypoExprPtr subst = Sub({Binding{"R", Rel("S")}, Binding{"T", Rel("R")}});
  EXPECT_EQ(FreeNames(subst), (NameSet{"R", "S"}));
  EXPECT_EQ(DomNames(subst), (NameSet{"R", "T"}));

  // free(e1 # e2) = free(e1) u (free(e2) - dom(e1)).
  HypoExprPtr composed = Comp(Sub1(Rel("S"), "R"), Sub1(Rel("R"), "T"));
  EXPECT_EQ(FreeNames(composed), NameSet{"S"});
  EXPECT_EQ(DomNames(composed), (NameSet{"R", "T"}));

  HypoExprPtr upd = Upd(Ins("R", Rel("S")));
  EXPECT_EQ(FreeNames(upd), (NameSet{"R", "S"}));
  EXPECT_EQ(DomNames(upd), NameSet{"R"});
}

TEST(FreeDomTest, WhenScoping) {
  // free(Q when eta) = free(eta) u (free(Q) - dom(eta)).
  QueryPtr q = When(U(Rel("R"), Rel("T")), Sub1(Rel("S"), "R"));
  EXPECT_EQ(FreeNames(q), (NameSet{"S", "T"}));

  // A name both read by the state and shadowed for the body.
  QueryPtr q2 = When(Rel("R"), Sub1(Rel("R"), "R"));
  EXPECT_EQ(FreeNames(q2), NameSet{"R"});
}

TEST(FreeDomTest, CondExtension) {
  UpdatePtr cond = If(Rel("G"), Ins("R", Rel("S")), Del("T", Rel("U")));
  EXPECT_EQ(FreeNames(cond), (NameSet{"G", "R", "S", "T", "U"}));
  EXPECT_EQ(DomNames(cond), (NameSet{"R", "T"}));
}

TEST(FreeDomTest, Disjoint) {
  EXPECT_TRUE(Disjoint(NameSet{"A", "B"}, NameSet{"C"}));
  EXPECT_FALSE(Disjoint(NameSet{"A", "B"}, NameSet{"B", "C"}));
  EXPECT_TRUE(Disjoint(NameSet{}, NameSet{"X"}));
}

}  // namespace
}  // namespace hql
