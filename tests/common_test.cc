#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <set>
#include <stdexcept>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "tests/test_util.h"

namespace hql {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusTest, GovernorFactories) {
  Status c = Status::Cancelled("stopped");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: stopped");
  Status r = Status::ResourceExhausted("over budget");
  EXPECT_EQ(r.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.ToString(), "ResourceExhausted: over budget");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  HQL_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_EQ(*ok, 2);

  Result<int> bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // inner Half(3) fails
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(43);
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  int low = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++low;
  }
  // With s=1.2 the first 10 ranks carry well over half the mass.
  EXPECT_GT(low, 2500);
  // s=0 degrades to uniform.
  low = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(low / 5000.0, 0.1, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%zu", static_cast<size_t>(3)), "3");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(ThreadPoolTest, RunsPlainTasksToCompletion) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  EXPECT_OK(pool.WaitAll());
  EXPECT_EQ(done.load(), 64);
  EXPECT_FALSE(pool.cancel_token()->cancelled());
}

TEST(ThreadPoolTest, ThrowingTaskBecomesInternalAndPoolSurvives) {
  ThreadPool pool(2);
  pool.Submit(std::function<Status()>(
      []() -> Status { throw std::runtime_error("kaboom"); }));
  Status st = pool.WaitAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("kaboom"), std::string::npos);
  // The pool is alive: after rearming, new work runs normally.
  pool.ResetBatch();
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  EXPECT_OK(pool.WaitAll());
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, FirstErrorCancelsBatchAndDrainsQueuedTasks) {
  // A single worker keeps the order deterministic: the failing task runs
  // first, so every task queued behind it must be drained unrun.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.Submit(std::function<Status()>(
      []() -> Status { return Status::Internal("first failure"); }));
  for (int i = 0; i < 8; ++i) {
    pool.Submit(std::function<Status()>([&ran]() -> Status {
      ran.fetch_add(1);
      return Status::OK();
    }));
  }
  Status st = pool.WaitAll();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("first failure"), std::string::npos);
  EXPECT_EQ(ran.load(), 0);  // all drained, none executed
  EXPECT_TRUE(pool.cancel_token()->cancelled());

  // ResetBatch installs a fresh token and clears the error.
  pool.ResetBatch();
  EXPECT_FALSE(pool.cancel_token()->cancelled());
  pool.Submit(std::function<Status()>([&ran]() -> Status {
    ran.fetch_add(1);
    return Status::OK();
  }));
  EXPECT_OK(pool.WaitAll());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsWithPendingFailedBatch) {
  // Destroying a pool whose batch failed must not deadlock or terminate.
  ThreadPool pool(2);
  for (int i = 0; i < 16; ++i) {
    pool.Submit(std::function<Status()>(
        []() -> Status { return Status::Internal("boom"); }));
  }
  // No WaitAll: the destructor drains and joins.
}

TEST(StringsTest, Hashing) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace hql
