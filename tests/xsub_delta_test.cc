#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/delta.h"
#include "eval/delta_ops.h"
#include "eval/direct.h"
#include "eval/ra_eval.h"
#include "eval/filter2.h"
#include "eval/filter3.h"
#include "eval/xsub.h"
#include "hql/collapse.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

// ---------------------------------------------------------------------------
// Xsub-values.
// ---------------------------------------------------------------------------

TEST(XsubTest, BindGetApply) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));

  XsubValue e;
  EXPECT_TRUE(e.empty());
  e.Bind("R", Ints({{9}}));
  EXPECT_TRUE(e.Has("R"));
  ASSERT_NE(e.Get("R"), nullptr);
  EXPECT_EQ(*e.Get("R"), Ints({{9}}));
  EXPECT_EQ(e.Get("S"), nullptr);

  ASSERT_OK_AND_ASSIGN(Database applied, e.ApplyTo(db));
  EXPECT_EQ(applied.GetRef("R"), Ints({{9}}));
  EXPECT_EQ(applied.GetRef("S"), Ints({{2}}));  // untouched
  EXPECT_EQ(e.TotalTuples(), 1u);
}

TEST(XsubTest, SmashLaterWins) {
  XsubValue e1;
  e1.Bind("R", Ints({{1}}));
  e1.Bind("S", Ints({{2}}));
  XsubValue e2;
  e2.Bind("R", Ints({{9}}));
  XsubValue smashed = e1.SmashWith(e2);
  EXPECT_EQ(*smashed.Get("R"), Ints({{9}}));  // e2 wins
  EXPECT_EQ(*smashed.Get("S"), Ints({{2}}));  // e1 preserved
}

// ---------------------------------------------------------------------------
// Delta values.
// ---------------------------------------------------------------------------

TEST(DeltaTest, ApplySemantics) {
  Relation base = Ints({{1}, {2}, {3}});
  DeltaValue d;
  d.Bind("R", DeltaPair(Ints({{2}}), Ints({{4}})));
  EXPECT_EQ(d.ApplyToRelation(base, "R"), Ints({{1}, {3}, {4}}));
  // Unbound name: identity.
  EXPECT_EQ(d.ApplyToRelation(base, "S"), base);
}

TEST(DeltaTest, ApplyToDatabase) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}, {2}})));
  DeltaValue d;
  d.Bind("R", DeltaPair(Ints({{1}}), Ints({{7}})));
  ASSERT_OK_AND_ASSIGN(Database out, d.ApplyTo(db));
  EXPECT_EQ(out.GetRef("R"), Ints({{2}, {7}}));
}

TEST(DeltaTest, SmashEquations) {
  // D = (D1 - I2) u D2 ; I = (I1 - D2) u I2.
  DeltaValue d1;
  d1.Bind("R", DeltaPair(Ints({{1}, {2}}), Ints({{5}, {6}})));
  DeltaValue d2;
  d2.Bind("R", DeltaPair(Ints({{5}, {3}}), Ints({{2}, {7}})));
  DeltaValue s = d1.SmashWith(d2);
  const DeltaPair* p = s.Get("R");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->del, Ints({{1}, {3}, {5}}));   // ({1,2}-{2,7}) u {5,3}
  EXPECT_EQ(p->ins, Ints({{2}, {6}, {7}}));   // ({5,6}-{5,3}) u {2,7}
}

TEST(DeltaTest, SmashIsApplyComposition) {
  // apply(apply(DB, D1), D2) == apply(DB, D1 ! D2), randomized.
  Rng rng(133);
  Schema schema = MakeSchema({{"R", 2}});
  for (int trial = 0; trial < 100; ++trial) {
    Database db(schema);
    ASSERT_OK(db.Set("R", GenRelation(&rng, 30, 2, 20, 20)));
    auto random_delta = [&]() {
      DeltaValue d;
      d.Bind("R", DeltaPair(GenRelation(&rng, 8, 2, 20, 20),
                            GenRelation(&rng, 8, 2, 20, 20)));
      return d;
    };
    DeltaValue d1 = random_delta();
    DeltaValue d2 = random_delta();
    ASSERT_OK_AND_ASSIGN(Database step1, d1.ApplyTo(db));
    ASSERT_OK_AND_ASSIGN(Database two_steps, d2.ApplyTo(step1));
    ASSERT_OK_AND_ASSIGN(Database smashed, d1.SmashWith(d2).ApplyTo(db));
    EXPECT_EQ(two_steps, smashed);
  }
}

// ---------------------------------------------------------------------------
// Streaming delta operators.
// ---------------------------------------------------------------------------

TEST(DeltaScanTest, StreamsApplyInOrder) {
  Relation base = Ints({{1}, {2}, {3}, {5}});
  DeltaPair pair(Ints({{2}, {9}}), Ints({{0}, {3}, {4}}));
  // Expected: ({1,2,3,5} - {2,9}) u {0,3,4} = {0,1,3,4,5}.
  std::vector<Tuple> got;
  for (DeltaScan scan(base, &pair); !scan.Done(); scan.Advance()) {
    got.push_back(scan.Current());
  }
  Relation out = Relation::FromSortedUnique(1, std::move(got));
  EXPECT_EQ(out, Ints({{0}, {1}, {3}, {4}, {5}}));
}

TEST(DeltaScanTest, NullDeltaStreamsBase) {
  Relation base = Ints({{1}, {2}});
  std::vector<Tuple> got;
  for (DeltaScan scan(base, nullptr); !scan.Done(); scan.Advance()) {
    got.push_back(scan.Current());
  }
  EXPECT_EQ(got.size(), 2u);
}

TEST(DeltaScanTest, RandomizedAgainstMaterialized) {
  Rng rng(137);
  for (int trial = 0; trial < 100; ++trial) {
    Relation base = GenRelation(&rng, 40, 2, 25, 10);
    DeltaPair pair(SampleFraction(&rng, base, 0.3),
                   GenRelation(&rng, 10, 2, 25, 10));
    Relation expected = base.DifferenceWith(pair.del).UnionWith(pair.ins);
    std::vector<Tuple> got;
    for (DeltaScan scan(base, &pair); !scan.Done(); scan.Advance()) {
      got.push_back(scan.Current());
    }
    EXPECT_EQ(Relation::FromSortedUnique(2, std::move(got)), expected);
  }
}

TEST(SelectWhenTest, MatchesMaterialized) {
  Rng rng(139);
  ScalarExprPtr pred = Gt(Col(0), Int(10));
  for (int trial = 0; trial < 50; ++trial) {
    Relation base = GenRelation(&rng, 50, 2, 25, 10);
    DeltaPair pair(SampleFraction(&rng, base, 0.2),
                   GenRelation(&rng, 10, 2, 25, 10));
    Relation expected = Relation::FromTuples(2, [&] {
      std::vector<Tuple> v;
      for (const Tuple& t :
           base.DifferenceWith(pair.del).UnionWith(pair.ins)) {
        if (pred->EvaluatesTrue(t)) v.push_back(t);
      }
      return v;
    }());
    EXPECT_EQ(SelectWhen(base, &pair, *pred), expected);
  }
}

TEST(JoinWhenTest, MergePathMatchesReference) {
  Rng rng(141);
  ScalarExprPtr pred = Eq(Col(0), Col(2));
  for (int trial = 0; trial < 60; ++trial) {
    Relation l = GenRelation(&rng, 40, 2, 15, 8);
    Relation r = GenRelation(&rng, 40, 2, 15, 8);
    DeltaPair dl(SampleFraction(&rng, l, 0.2), GenRelation(&rng, 8, 2, 15, 8));
    DeltaPair dr(SampleFraction(&rng, r, 0.2), GenRelation(&rng, 8, 2, 15, 8));

    Relation l2 = l.DifferenceWith(dl.del).UnionWith(dl.ins);
    Relation r2 = r.DifferenceWith(dr.del).UnionWith(dr.ins);
    Relation expected = JoinRelations(l2, r2, pred);

    // Sort-merge path (join column 0 = column 0).
    EXPECT_EQ(JoinWhen(l, &dl, r, &dr, 0, 0, pred), expected);
    // Hash path (pretend the key is a non-leading column pairing).
    EXPECT_EQ(JoinWhen(l, &dl, r, &dr, 0, 0, pred), expected);
  }
}

TEST(JoinWhenTest, HashPathNonLeadingColumns) {
  Rng rng(143);
  // Join on $1 = $3 (second columns) exercises the streamed hash join.
  ScalarExprPtr pred = Eq(Col(1), Col(3));
  for (int trial = 0; trial < 40; ++trial) {
    Relation l = GenRelation(&rng, 30, 2, 100, 6);
    Relation r = GenRelation(&rng, 30, 2, 100, 6);
    DeltaPair dl(SampleFraction(&rng, l, 0.2),
                 GenRelation(&rng, 6, 2, 100, 6));
    DeltaPair dr(SampleFraction(&rng, r, 0.2),
                 GenRelation(&rng, 6, 2, 100, 6));
    Relation l2 = l.DifferenceWith(dl.del).UnionWith(dl.ins);
    Relation r2 = r.DifferenceWith(dr.del).UnionWith(dr.ins);
    Relation expected = JoinRelations(l2, r2, pred);
    EXPECT_EQ(JoinWhen(l, &dl, r, &dr, 1, 1, pred), expected);
  }
}

TEST(JoinWhenTest, NullDeltasArePlainJoin) {
  Relation l = Ints({{1, 10}, {2, 20}});
  Relation r = Ints({{1, 100}, {3, 300}});
  ScalarExprPtr pred = Eq(Col(0), Col(2));
  EXPECT_EQ(JoinWhen(l, nullptr, r, nullptr, 0, 0, pred),
            Ints({{1, 10, 1, 100}}));
}

TEST(EvalFilterDTest, MatchesEvalOnAppliedState) {
  // eval_filter_d(Q, Delta) == [Q](apply(DB, Delta)), randomized.
  Rng rng(151);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  options.allow_aggregate = true;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 8, 8);
    DeltaValue delta;
    for (const std::string& name : {"A2", "B1"}) {
      size_t arity = schema.ArityOf(name).value();
      delta.Bind(name,
                 DeltaPair(SampleFraction(&rng, db.GetRef(name), 0.4),
                           GenRelation(&rng, 4, arity, 8, 8)));
    }
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation streamed, EvalFilterD(q, db, delta));
    ASSERT_OK_AND_ASSIGN(Database applied, delta.ApplyTo(db));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, applied));
    EXPECT_EQ(streamed, reference) << q->ToString();
  }
}

TEST(Filter3WorkerTest, ExplicitEnvironment) {
  // RunFilter3 with an explicit env evaluates under a caller-provided
  // delta, the analogue of the Heraclitus run-time stack top.
  Schema schema = MakeSchema({{"R", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}, {2}})));
  DeltaValue env;
  env.Bind("R", DeltaPair(Ints({{1}}), Ints({{5}})));
  ASSERT_OK_AND_ASSIGN(CollapsedPtr tree,
                       Collapse(dsl::Rel("R"), schema));
  Filter3Options options;
  options.collapsed = tree;
  options.env = &env;
  ASSERT_OK_AND_ASSIGN(Relation out,
                       RunFilter3(nullptr, db, schema, options));
  EXPECT_EQ(out, Ints({{2}, {5}}));
}

TEST(Filter2WorkerTest, ExplicitEnvironment) {
  Schema schema = MakeSchema({{"R", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  XsubValue env;
  env.Bind("R", Ints({{9}}));
  ASSERT_OK_AND_ASSIGN(CollapsedPtr tree,
                       Collapse(dsl::Rel("R"), schema));
  Filter2Options options;
  options.collapsed = tree;
  options.env = &env;
  ASSERT_OK_AND_ASSIGN(Relation out,
                       RunFilter2(nullptr, db, schema, options));
  EXPECT_EQ(out, Ints({{9}}));
}

}  // namespace
}  // namespace hql
