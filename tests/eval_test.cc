#include "eval/ra_eval.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

class RaEvalTest : public ::testing::Test {
 protected:
  RaEvalTest() : schema_(MakeSchema({{"R", 2}, {"S", 2}, {"V", 1}})),
                 db_(schema_) {
    EXPECT_OK(db_.Set("R", Ints({{1, 10}, {2, 20}, {3, 30}})));
    EXPECT_OK(db_.Set("S", Ints({{2, 200}, {3, 300}, {4, 400}})));
    EXPECT_OK(db_.Set("V", Ints({{1}, {3}})));
  }

  Relation Eval(const QueryPtr& q) {
    DatabaseResolver resolver(db_);
    auto result = EvalRa(q, resolver);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : Relation(1);
  }

  Schema schema_;
  Database db_;
};

TEST_F(RaEvalTest, LeafForms) {
  EXPECT_EQ(Eval(Rel("V")), Ints({{1}, {3}}));
  EXPECT_TRUE(Eval(Empty(3)).empty());
  EXPECT_EQ(Eval(Empty(3)).arity(), 3u);
  EXPECT_EQ(Eval(Single({Value::Int(9)})), Ints({{9}}));
}

TEST_F(RaEvalTest, SelectProject) {
  EXPECT_EQ(Eval(Sel(Ge(Col(0), Int(2)), Rel("R"))),
            Ints({{2, 20}, {3, 30}}));
  EXPECT_EQ(Eval(Proj({1}, Rel("R"))), Ints({{10}, {20}, {30}}));
  EXPECT_EQ(Eval(Proj({1, 0}, Rel("S"))),
            Ints({{200, 2}, {300, 3}, {400, 4}}));
  // Projection collapses duplicates (set semantics).
  EXPECT_EQ(
      Eval(Proj({0}, U(Rel("R"), Single({Value::Int(1), Value::Int(99)}))))
          .size(),
      3u);
}

TEST_F(RaEvalTest, SetOps) {
  EXPECT_EQ(Eval(U(Rel("V"), Single({Value::Int(7)}))),
            Ints({{1}, {3}, {7}}));
  EXPECT_EQ(Eval(N(Proj({0}, Rel("R")), Proj({0}, Rel("S")))),
            Ints({{2}, {3}}));
  EXPECT_EQ(Eval(Diff(Proj({0}, Rel("R")), Proj({0}, Rel("S")))),
            Ints({{1}}));
}

TEST_F(RaEvalTest, ProductAndJoin) {
  EXPECT_EQ(Eval(X(Rel("V"), Rel("V"))).size(), 4u);
  Relation joined = Eval(Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")));
  EXPECT_EQ(joined, Ints({{2, 20, 2, 200}, {3, 30, 3, 300}}));
  // Theta join without equality falls back to filtered nested loops.
  Relation theta = Eval(Join(Lt(Col(0), Col(2)), Rel("R"), Rel("S")));
  EXPECT_EQ(theta.size(), 6u);
}

TEST_F(RaEvalTest, JoinWithResidualPredicate) {
  // Equality drives the hash join; the extra conjunct filters.
  Relation j = Eval(Join(And(Eq(Col(0), Col(2)), Gt(Col(3), Int(250))),
                         Rel("R"), Rel("S")));
  EXPECT_EQ(j, Ints({{3, 30, 3, 300}}));
}

TEST_F(RaEvalTest, ClusteredSelectOverProduct) {
  // sigma over x evaluates as a join, same result as materializing.
  QueryPtr q = Sel(Eq(Col(0), Col(2)), X(Rel("R"), Rel("S")));
  EXPECT_EQ(Eval(q), Ints({{2, 20, 2, 200}, {3, 30, 3, 300}}));
}

TEST_F(RaEvalTest, RejectsWhen) {
  DatabaseResolver resolver(db_);
  QueryPtr q = When(Rel("R"), Sub1(Rel("S"), "R"));
  EXPECT_EQ(EvalRa(q, resolver).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RaEvalTest, UnknownRelation) {
  DatabaseResolver resolver(db_);
  EXPECT_EQ(EvalRa(Rel("Nope"), resolver).status().code(),
            StatusCode::kNotFound);
}

TEST_F(RaEvalTest, OverlayResolver) {
  DatabaseResolver base(db_);
  OverlayResolver overlay(base);
  overlay.Bind("V", Ints({{42}}));
  ASSERT_OK_AND_ASSIGN(Relation v, EvalRa(Rel("V"), overlay));
  EXPECT_EQ(v, Ints({{42}}));
  // Unbound names fall through.
  ASSERT_OK_AND_ASSIGN(Relation r, EvalRa(Rel("R"), overlay));
  EXPECT_EQ(r.size(), 3u);
}

// ---------------------------------------------------------------------------
// Direct semantics.
// ---------------------------------------------------------------------------

TEST(DirectEvalTest, UpdateSemantics) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}, {2}})));
  ASSERT_OK(db.Set("S", Ints({{2}, {3}})));

  ASSERT_OK_AND_ASSIGN(Database ins_db, ExecUpdate(Ins("R", Rel("S")), db));
  EXPECT_EQ(ins_db.GetRef("R"), Ints({{1}, {2}, {3}}));

  ASSERT_OK_AND_ASSIGN(Database del_db, ExecUpdate(Del("R", Rel("S")), db));
  EXPECT_EQ(del_db.GetRef("R"), Ints({{1}}));

  // Sequencing is left to right.
  ASSERT_OK_AND_ASSIGN(
      Database seq_db,
      ExecUpdate(Seq(Ins("R", Rel("S")), Del("S", Rel("R"))), db));
  EXPECT_EQ(seq_db.GetRef("R"), Ints({{1}, {2}, {3}}));
  EXPECT_TRUE(seq_db.GetRef("S").empty());  // R already contains 2 and 3
}

TEST(DirectEvalTest, ConditionalUpdate) {
  Schema schema = MakeSchema({{"R", 1}, {"C", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  UpdatePtr cond = If(Rel("C"), Ins("R", Single({Value::Int(2)})),
                      Del("R", Single({Value::Int(1)})));
  // Guard empty: else branch.
  ASSERT_OK_AND_ASSIGN(Database else_db, ExecUpdate(cond, db));
  EXPECT_TRUE(else_db.GetRef("R").empty());
  // Guard non-empty: then branch.
  ASSERT_OK(db.Set("C", Ints({{5}})));
  ASSERT_OK_AND_ASSIGN(Database then_db, ExecUpdate(cond, db));
  EXPECT_EQ(then_db.GetRef("R"), Ints({{1}, {2}}));
}

TEST(DirectEvalTest, WhenDoesNotMutate) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));
  QueryPtr q = When(Rel("R"), Upd(Ins("R", Rel("S"))));
  ASSERT_OK_AND_ASSIGN(Relation hypothetical, EvalDirect(q, db));
  EXPECT_EQ(hypothetical, Ints({{1}, {2}}));
  // The underlying state is untouched.
  EXPECT_EQ(db.GetRef("R"), Ints({{1}}));
}

TEST(DirectEvalTest, SubstStateIsParallel) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));
  // {S/R, R/S} swaps using the old values on both sides.
  HypoExprPtr swap = Sub({Binding{"R", Rel("S")}, Binding{"S", Rel("R")}});
  ASSERT_OK_AND_ASSIGN(Database swapped, EvalState(swap, db));
  EXPECT_EQ(swapped.GetRef("R"), Ints({{2}}));
  EXPECT_EQ(swapped.GetRef("S"), Ints({{1}}));
}

TEST(DirectEvalTest, ComposeOrderLemma36) {
  Schema schema = MakeSchema({{"R", 1}});
  Database db(schema);
  // eta1 inserts 1, eta2 deletes 1: eta1 # eta2 leaves R empty.
  HypoExprPtr eta1 = Upd(Ins("R", Single({Value::Int(1)})));
  HypoExprPtr eta2 = Upd(Del("R", Single({Value::Int(1)})));
  ASSERT_OK_AND_ASSIGN(Database out, EvalState(Comp(eta1, eta2), db));
  EXPECT_TRUE(out.GetRef("R").empty());
  ASSERT_OK_AND_ASSIGN(Database out2, EvalState(Comp(eta2, eta1), db));
  EXPECT_EQ(out2.GetRef("R").size(), 1u);
}

TEST(DirectEvalTest, JoinStrategiesAgreeRandomized) {
  // The clustered hash join agrees with the naive product+filter.
  Rng rng(91);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 8, 6);
    ScalarExprPtr pred = RandomPredicate(&rng, 4, options);
    QueryPtr join = Join(pred, Rel("A2"), Rel("B2"));
    QueryPtr naive = Sel(pred, X(Rel("A2"), Rel("B2")));
    ASSERT_OK_AND_ASSIGN(Relation a, EvalDirect(join, db));
    ASSERT_OK_AND_ASSIGN(Relation b, EvalDirect(naive, db));
    EXPECT_EQ(a, b) << pred->ToString();
  }
}

}  // namespace
}  // namespace hql
