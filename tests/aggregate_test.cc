// Tests for the Section 6 aggregation extension: gamma[G; f(c)](Q) across
// the whole stack — semantics, typecheck, parsing, rewriting, and agreement
// of all evaluation strategies under `when`.

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/typecheck.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/ra_eval.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "opt/planner.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(AggregateRelationTest, CountSumMinMax) {
  // (dept, salary): dept 1 has 10, 20; dept 2 has 5.
  Relation in = Ints({{1, 10}, {1, 20}, {2, 5}});
  EXPECT_EQ(AggregateRelation(in, {0}, AggFunc::kCount, 1),
            Ints({{1, 2}, {2, 1}}));
  EXPECT_EQ(AggregateRelation(in, {0}, AggFunc::kSum, 1),
            Ints({{1, 30}, {2, 5}}));
  EXPECT_EQ(AggregateRelation(in, {0}, AggFunc::kMin, 1),
            Ints({{1, 10}, {2, 5}}));
  EXPECT_EQ(AggregateRelation(in, {0}, AggFunc::kMax, 1),
            Ints({{1, 20}, {2, 5}}));
}

TEST(AggregateRelationTest, GlobalAggregate) {
  Relation in = Ints({{1, 10}, {2, 20}});
  // No group columns: one global row.
  Relation sum = AggregateRelation(in, {}, AggFunc::kSum, 1);
  EXPECT_EQ(sum, Ints({{30}}));
  // Empty input: no rows at all (not a zero row).
  Relation none = AggregateRelation(Relation(2), {}, AggFunc::kCount, 0);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.arity(), 1u);
}

TEST(AggregateRelationTest, MixedNumericTypes) {
  Relation in = Relation::FromTuples(
      2, {{Value::Int(1), Value::Int(2)},
          {Value::Int(1), Value::Double(0.5)}});
  Relation sum = AggregateRelation(in, {0}, AggFunc::kSum, 1);
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_EQ(sum.tuples()[0][1], Value::Double(2.5));
  // Non-numbers are ignored by sum; all-non-number groups sum to null.
  Relation strs = Relation::FromTuples(
      2, {{Value::Int(1), Value::Str("a")}});
  Relation s2 = AggregateRelation(strs, {0}, AggFunc::kSum, 1);
  EXPECT_TRUE(s2.tuples()[0][1].is_null());
}

TEST(AggregateTest, TypecheckArity) {
  Schema schema = MakeSchema({{"R", 3}});
  QueryPtr ok = Agg({0, 1}, AggFunc::kSum, 2, Rel("R"));
  ASSERT_OK_AND_ASSIGN(size_t arity, InferQueryArity(ok, schema));
  EXPECT_EQ(arity, 3u);
  EXPECT_EQ(InferQueryArity(Agg({3}, AggFunc::kSum, 0, Rel("R")), schema)
                .status()
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(InferQueryArity(Agg({0}, AggFunc::kSum, 5, Rel("R")), schema)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST(AggregateTest, ToStringAndParseRoundTrip) {
  QueryPtr q = Agg({0, 1}, AggFunc::kSum, 2, Rel("R"));
  EXPECT_EQ(q->ToString(), "gamma[0,1; sum(2)](R)");
  ASSERT_OK_AND_ASSIGN(QueryPtr parsed, ParseQuery(q->ToString()));
  EXPECT_TRUE(parsed->Equals(*q));

  // Global aggregate prints with an empty group list.
  QueryPtr g = Agg({}, AggFunc::kCount, 0, Rel("R"));
  EXPECT_EQ(g->ToString(), "gamma[; count(0)](R)");
  ASSERT_OK_AND_ASSIGN(parsed, ParseQuery(g->ToString()));
  EXPECT_TRUE(parsed->Equals(*g));

  for (const char* text :
       {"gamma[0; min(1)](R x S)", "gamma[1,0; max(2)](sigma[$0 > 1](T))"}) {
    ASSERT_OK_AND_ASSIGN(QueryPtr p1, ParseQuery(text));
    ASSERT_OK_AND_ASSIGN(QueryPtr p2, ParseQuery(p1->ToString()));
    EXPECT_TRUE(p1->Equals(*p2)) << text;
  }
}

TEST(AggregateTest, WhenPushesThroughAggregate) {
  // gamma(Q) when eta == gamma(Q when eta): aggregation is just another
  // unary operator to the when-distribution rules.
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1, 10}, {2, 20}})));
  ASSERT_OK(db.Set("S", Ints({{1, 30}})));

  QueryPtr agg = Agg({0}, AggFunc::kSum, 1, Rel("R"));
  QueryPtr q = Query::When(agg, Upd(Ins("R", Rel("S"))));
  ASSERT_OK_AND_ASSIGN(Relation direct, EvalDirect(q, db));
  EXPECT_EQ(direct, Ints({{1, 40}, {2, 20}}));

  // The lazy rewrite pushes the substitution below gamma.
  ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(q, schema));
  QueryPtr expected = Agg({0}, AggFunc::kSum, 1, U(Rel("R"), Rel("S")));
  EXPECT_TRUE(red->Equals(*expected)) << red->ToString();
}

TEST(AggregateTest, SimplifyOverEmpty) {
  Schema schema = MakeSchema({{"R", 2}});
  QueryPtr q = Agg({0}, AggFunc::kSum, 1, Empty(2));
  ASSERT_OK_AND_ASSIGN(QueryPtr s, SimplifyRa(q, schema));
  EXPECT_TRUE(s->Equals(*Empty(2)));
}

TEST(AggregateTest, AllStrategiesAgreeRandomized) {
  Rng rng(303);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_aggregate = true;
  int with_aggregate = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    if (q->ToString().find("gamma") != std::string::npos) ++with_aggregate;
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    for (Strategy s : {Strategy::kLazy, Strategy::kFilter1,
                       Strategy::kFilter2, Strategy::kHybrid}) {
      auto result = Execute(q, db, schema, s);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value(), reference)
          << StrategyName(s) << " on " << q->ToString();
    }
    ASSERT_OK_AND_ASSIGN(Relation f3,
                         Execute(q, db, schema, Strategy::kFilter3));
    EXPECT_EQ(f3, reference) << q->ToString();
  }
  EXPECT_GT(with_aggregate, 20);
}

TEST(AggregateTest, InsideHypotheticalState) {
  // The update argument itself aggregates: insert per-department counts
  // into a summary relation, hypothetically.
  Schema schema = MakeSchema({{"emp", 2}, {"summary", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("emp", Ints({{1, 10}, {1, 20}, {2, 5}})));
  QueryPtr q = Query::When(
      Rel("summary"),
      Upd(Ins("summary", Agg({0}, AggFunc::kCount, 1, Rel("emp")))));
  ASSERT_OK_AND_ASSIGN(Relation direct, EvalDirect(q, db));
  EXPECT_EQ(direct, Ints({{1, 2}, {2, 1}}));
  for (Strategy s : {Strategy::kLazy, Strategy::kFilter1, Strategy::kFilter2,
                     Strategy::kFilter3}) {
    ASSERT_OK_AND_ASSIGN(Relation out, Execute(q, db, schema, s));
    EXPECT_EQ(out, direct) << StrategyName(s);
  }
}

}  // namespace
}  // namespace hql
