// Fault-injection chaos sweep: every strategy x every failpoint site x
// fire-after-K and seeded-probability arming. Each governed run must either
// return the bit-identical un-failpointed result or a clean kCancelled /
// kResourceExhausted — never a crash, a hang, or a silently corrupted
// relation. Armed runs are executed twice with identical arming to pin down
// determinism of the injection itself.
//
// Failpoints compile to no-ops under NDEBUG (the default Release build); in
// that configuration every armed run simply matches the reference and this
// sweep degenerates to a strategy-agreement test, which is still a valid
// (if weaker) pass. CI runs it in Debug where the sites actually fire.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ast/builders.h"
#include "common/failpoint.h"
#include "common/governor.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/memo.h"
#include "opt/planner.h"
#include "opt/session.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT

constexpr Strategy kAllStrategies[] = {
    Strategy::kDirect,  Strategy::kLazy,    Strategy::kFilter1,
    Strategy::kFilter2, Strategy::kFilter3, Strategy::kHybrid,
};

Database ChaosDb() {
  Rng rng(4241);
  Schema schema;
  HQL_CHECK(schema.AddRelation("R", 2).ok());
  HQL_CHECK(schema.AddRelation("S", 2).ok());
  Database db(schema);
  HQL_CHECK(db.Set("R", GenRelation(&rng, 200, 2, 150)).ok());
  HQL_CHECK(db.Set("S", GenRelation(&rng, 200, 2, 150)).ok());
  return db;
}

// A hypothetical query exercising deltas, joins and inserts; its state is a
// chain of atomic updates so every strategy (including HQL-3) can run it.
QueryPtr ChaosQuery() {
  HypoExprPtr state = Upd(Seq(
      Del("R", Sel(Lt(Col(0), Int(40)), Rel("R"))),
      Ins("R", Proj({0, 1}, Join(Eq(Col(0), Col(2)), Rel("S"), Rel("S"))))));
  return When(Sel(Ge(Col(0), Int(30)), Rel("R")), state);
}

// One governed execution's outcome: a relation or a status code.
struct Outcome {
  bool ok = false;
  Relation relation{0};
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool SameAs(const Outcome& other) const {
    if (ok != other.ok) return false;
    return ok ? relation == other.relation : code == other.code;
  }
  std::string Describe() const {
    return ok ? "ok(" + std::to_string(relation.size()) + " tuples)"
              : std::string(StatusCodeName(code)) + ": " + message;
  }
};

Outcome RunGoverned(const QueryPtr& query, const Database& db,
                    Strategy strategy) {
  MemoCache memo;  // fresh per run: exercises the memo.insert site
  PlannerOptions options;
  options.memo = &memo;
  // A (never-cancelled) token forces governor installation so fired sites
  // surface as clean errors instead of silent counters.
  options.cancel_token = std::make_shared<CancelToken>();
  Result<Relation> result =
      Execute(query, db, db.schema(), strategy, options);
  Outcome out;
  out.ok = result.ok();
  if (result.ok()) {
    out.relation = std::move(result).value();
  } else {
    out.code = result.status().code();
    out.message = result.status().message();
  }
  return out;
}

TEST(ChaosFailPointTest, EveryStrategySurvivesEveryArmedSite) {
  DisarmAllFailPoints();
  Database db = ChaosDb();
  QueryPtr query = ChaosQuery();
  // The site matrix is derived from the registry, never hard-coded: a site
  // added to HQL_FAILPOINT_SITE_LIST enters this sweep automatically.
  std::vector<std::string> sites = RegisteredFailPointSites();
  ASSERT_GE(sites.size(), 7u);

  // Both trip codes, both arming modes, two seeds for the probability mode.
  const std::vector<FailPointSpec> specs = {
      FailPointSpec::AfterN(0, StatusCode::kResourceExhausted),
      FailPointSpec::AfterN(2, StatusCode::kCancelled),
      FailPointSpec::Probability(0.9, 7, StatusCode::kResourceExhausted),
      FailPointSpec::Probability(0.9, 1234, StatusCode::kCancelled),
  };

  for (Strategy strategy : kAllStrategies) {
    Outcome reference = RunGoverned(query, db, strategy);
    ASSERT_TRUE(reference.ok)
        << StrategyName(strategy) << ": " << reference.Describe();

    for (const std::string& site : sites) {
      for (size_t si = 0; si < specs.size(); ++si) {
        std::string label = std::string(StrategyName(strategy)) + "/" +
                            site + "/spec" + std::to_string(si);
        // Identical arming twice: the injection itself must be
        // deterministic on this single-threaded path.
        ArmFailPoint(site, specs[si]);
        Outcome first = RunGoverned(query, db, strategy);
        ArmFailPoint(site, specs[si]);
        Outcome second = RunGoverned(query, db, strategy);
        DisarmFailPoint(site);

        EXPECT_TRUE(first.SameAs(second))
            << label << ": " << first.Describe() << " vs "
            << second.Describe();
        for (const Outcome& out : {first, second}) {
          if (out.ok) {
            // Survived the injection: the result must be bit-identical,
            // never silently truncated or corrupted.
            EXPECT_EQ(out.relation, reference.relation) << label;
          } else {
            EXPECT_TRUE(out.code == StatusCode::kCancelled ||
                        out.code == StatusCode::kResourceExhausted)
                << label << ": " << out.Describe();
          }
        }
      }
    }
  }
  DisarmAllFailPoints();
}

// Columnar execution under injection: with the vectorized route enabled
// (thresholds forced down so it actually engages on the small chaos data),
// every strategy armed on the batch-build site must either degrade to the
// row kernels and return the bit-identical columnar-off result, or fail
// with a clean governed error — never a truncated or corrupted relation.
TEST(ChaosFailPointTest, ColumnarDegradesCleanlyUnderBatchBuildFailure) {
  DisarmAllFailPoints();
  Database db = ChaosDb();
  QueryPtr query = ChaosQuery();

  auto run = [&](Strategy strategy, ColumnarMode mode) {
    PlannerOptions options;
    options.columnar_mode = mode;
    options.columnar_min_rows = 1;
    options.columnar_morsel_rows = 64;
    options.columnar_threads = 1;
    options.cancel_token = std::make_shared<CancelToken>();
    Result<Relation> result =
        Execute(query, db, db.schema(), strategy, options);
    Outcome out;
    out.ok = result.ok();
    if (result.ok()) {
      out.relation = std::move(result).value();
    } else {
      out.code = result.status().code();
      out.message = result.status().message();
    }
    return out;
  };

  const std::vector<FailPointSpec> specs = {
      FailPointSpec::AfterN(0, StatusCode::kResourceExhausted),
      FailPointSpec::AfterN(1, StatusCode::kCancelled),
      FailPointSpec::Probability(0.9, 7, StatusCode::kResourceExhausted),
  };

  for (Strategy strategy : kAllStrategies) {
    Outcome reference = run(strategy, ColumnarMode::kOff);
    ASSERT_TRUE(reference.ok)
        << StrategyName(strategy) << ": " << reference.Describe();
    // Un-failpointed columnar-on agrees bit-identically with columnar-off.
    Outcome columnar = run(strategy, ColumnarMode::kAuto);
    ASSERT_TRUE(columnar.ok)
        << StrategyName(strategy) << ": " << columnar.Describe();
    EXPECT_EQ(columnar.relation, reference.relation)
        << StrategyName(strategy);

    for (size_t si = 0; si < specs.size(); ++si) {
      std::string label = std::string(StrategyName(strategy)) + "/spec" +
                          std::to_string(si);
      ArmFailPoint(kFailPointColumnBatchBuild, specs[si]);
      Outcome armed = run(strategy, ColumnarMode::kAuto);
      DisarmFailPoint(kFailPointColumnBatchBuild);
      if (armed.ok) {
        EXPECT_EQ(armed.relation, reference.relation) << label;
      } else {
        EXPECT_TRUE(armed.code == StatusCode::kCancelled ||
                    armed.code == StatusCode::kResourceExhausted)
            << label << ": " << armed.Describe();
      }
    }
  }
  DisarmAllFailPoints();
}

// Vectorized aggregation under injection: the same arming as above, but on
// an aggregate-over-when plan so the batch-build fire lands inside the
// columnar-aggregate route (TryColumnarAggregate). Degradation must reach
// the row aggregate bit-identically or fail with a clean governed error.
TEST(ChaosFailPointTest, ColumnarAggregateDegradesCleanlyUnderBatchBuildFailure) {
  DisarmAllFailPoints();
  Database db = ChaosDb();
  HypoExprPtr state =
      Upd(Seq(Del("R", Sel(Lt(Col(0), Int(40)), Rel("R"))),
              Ins("R", Single(hql::testing::IntRow({3, 9})))));
  QueryPtr query =
      When(Agg({0}, AggFunc::kSum, 1, Sel(Ge(Col(0), Int(2)), Rel("R"))),
           state);

  auto run = [&](Strategy strategy, ColumnarMode mode) {
    PlannerOptions options;
    options.columnar_mode = mode;
    options.columnar_min_rows = 1;
    options.columnar_morsel_rows = 64;
    options.columnar_threads = 1;
    options.cancel_token = std::make_shared<CancelToken>();
    Result<Relation> result =
        Execute(query, db, db.schema(), strategy, options);
    Outcome out;
    out.ok = result.ok();
    if (result.ok()) {
      out.relation = std::move(result).value();
    } else {
      out.code = result.status().code();
      out.message = result.status().message();
    }
    return out;
  };

  const std::vector<FailPointSpec> specs = {
      FailPointSpec::AfterN(0, StatusCode::kResourceExhausted),
      FailPointSpec::AfterN(1, StatusCode::kCancelled),
      FailPointSpec::Probability(0.9, 7, StatusCode::kResourceExhausted),
  };

  for (Strategy strategy : kAllStrategies) {
    Outcome reference = run(strategy, ColumnarMode::kOff);
    ASSERT_TRUE(reference.ok)
        << StrategyName(strategy) << ": " << reference.Describe();
    Outcome columnar = run(strategy, ColumnarMode::kAuto);
    ASSERT_TRUE(columnar.ok)
        << StrategyName(strategy) << ": " << columnar.Describe();
    EXPECT_EQ(columnar.relation, reference.relation)
        << StrategyName(strategy);

    for (size_t si = 0; si < specs.size(); ++si) {
      std::string label = std::string(StrategyName(strategy)) + "/spec" +
                          std::to_string(si);
      ArmFailPoint(kFailPointColumnBatchBuild, specs[si]);
      Outcome armed = run(strategy, ColumnarMode::kAuto);
      DisarmFailPoint(kFailPointColumnBatchBuild);
      if (armed.ok) {
        EXPECT_EQ(armed.relation, reference.relation) << label;
      } else {
        EXPECT_TRUE(armed.code == StatusCode::kCancelled ||
                    armed.code == StatusCode::kResourceExhausted)
            << label << ": " << armed.Describe();
      }
    }
  }
  DisarmAllFailPoints();
}

// Incremental patching under injection: warm the incremental cache on a
// base state, edit it by a small overlay delta, then arm the memo.patch
// site and re-execute. Every strategy must either return the bit-identical
// from-scratch result for the edited state (ungoverned fires, or the
// estimator choosing recompute) or fail with a clean governed error —
// never a half-patched relation.
TEST(ChaosFailPointTest, IncrementalPatchDegradesCleanlyUnderPatchFailure) {
  DisarmAllFailPoints();
  Database base = ChaosDb();
  QueryPtr query = ChaosQuery();
  // A small overlay edit: the second execution sees the same shared base
  // relations plus a few-tuple delta — exactly the regime the incremental
  // route patches.
  Result<Database> edited_or = ExecUpdate(
      Seq(Ins("R", Single(hql::testing::IntRow({7, 7}))),
          Del("S", Sel(Lt(Col(0), Int(3)), Rel("S")))),
      base);
  ASSERT_OK(edited_or.status());
  Database edited = std::move(edited_or).value();

  auto run = [&](const Database& db, IncrementalCache* cache,
                 Strategy strategy) {
    PlannerOptions options;
    if (cache != nullptr) {
      options.incremental_mode = IncrementalMode::kAuto;
      options.incremental_cache = cache;
    }
    options.cancel_token = std::make_shared<CancelToken>();
    Result<Relation> result =
        Execute(query, db, db.schema(), strategy, options);
    Outcome out;
    out.ok = result.ok();
    if (result.ok()) {
      out.relation = std::move(result).value();
    } else {
      out.code = result.status().code();
      out.message = result.status().message();
    }
    return out;
  };

  const std::vector<FailPointSpec> specs = {
      FailPointSpec::AfterN(0, StatusCode::kResourceExhausted),
      FailPointSpec::AfterN(0, StatusCode::kCancelled),
      FailPointSpec::Probability(0.9, 7, StatusCode::kResourceExhausted),
  };

  for (Strategy strategy : kAllStrategies) {
    Outcome reference = run(edited, nullptr, strategy);
    ASSERT_TRUE(reference.ok)
        << StrategyName(strategy) << ": " << reference.Describe();

    for (size_t si = 0; si < specs.size(); ++si) {
      std::string label = std::string(StrategyName(strategy)) + "/spec" +
                          std::to_string(si);
      IncrementalCache cache;
      // Warm: record the pre-edit execution into the incremental cache.
      Outcome warm = run(base, &cache, strategy);
      ASSERT_TRUE(warm.ok) << label << ": " << warm.Describe();

      ArmFailPoint(kFailPointMemoPatch, specs[si]);
      Outcome armed = run(edited, &cache, strategy);
      DisarmFailPoint(kFailPointMemoPatch);
      if (armed.ok) {
        EXPECT_EQ(armed.relation, reference.relation) << label;
      } else {
        EXPECT_TRUE(armed.code == StatusCode::kCancelled ||
                    armed.code == StatusCode::kResourceExhausted)
            << label << ": " << armed.Describe();
      }
    }
  }
  DisarmAllFailPoints();
}

// The thread-pool fan-out under injection: slots either match the family's
// un-failpointed values or carry a clean governed error; the pool itself
// must neither crash nor hang. (No pairwise determinism assertion here —
// hit interleaving across workers is scheduling-dependent.)
TEST(ChaosFailPointTest, AlternativesFamilySurvivesArmedSites) {
  DisarmAllFailPoints();
  Database db = ChaosDb();
  QueryPtr query = Sel(Ge(Col(0), Int(30)), Rel("R"));
  std::vector<HypoExprPtr> states;
  states.push_back(nullptr);
  for (int i = 0; i < 3; ++i) {
    int64_t lo = 20 + 30 * i;
    states.push_back(Upd(Del(
        "R", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + 25))),
                 Rel("R")))));
  }

  AlternativesOptions options;
  options.num_threads = 4;
  std::vector<Result<Relation>> reference =
      EvalAlternativesPartial(query, states, db, db.schema(), options);
  ASSERT_EQ(reference.size(), states.size());
  for (const Result<Relation>& r : reference) ASSERT_OK(r.status());

  for (const std::string& site : RegisteredFailPointSites()) {
    for (uint64_t seed : {uint64_t{11}, uint64_t{97}}) {
      ArmFailPoint(site, FailPointSpec::Probability(
                             0.5, seed, StatusCode::kResourceExhausted));
      std::vector<Result<Relation>> armed =
          EvalAlternativesPartial(query, states, db, db.schema(), options);
      DisarmFailPoint(site);
      ASSERT_EQ(armed.size(), states.size());
      for (size_t i = 0; i < armed.size(); ++i) {
        std::string label = site + "/seed" + std::to_string(seed) +
                            "/alt" + std::to_string(i);
        if (armed[i].ok()) {
          EXPECT_EQ(armed[i].value(), reference[i].value()) << label;
        } else {
          StatusCode code = armed[i].status().code();
          EXPECT_TRUE(code == StatusCode::kCancelled ||
                      code == StatusCode::kResourceExhausted)
              << label << ": " << armed[i].status().ToString();
        }
      }
    }
  }
  DisarmAllFailPoints();
}

// ---------------------------------------------------------------------------
// Failpoint mechanics (deterministic only where the sites are compiled in).
// ---------------------------------------------------------------------------

// The enumeration must cover exactly the declared catalog: every constant
// generated from HQL_FAILPOINT_SITE_LIST appears once, with no duplicates
// and no extras — so a site added to the list can never be silently absent
// from registry-derived sweeps, and a removed site cannot linger.
TEST(FailPointMechanicsTest, RegistryEnumeratesEveryDeclaredSite) {
  std::vector<std::string> sites = RegisteredFailPointSites();
  std::set<std::string> unique(sites.begin(), sites.end());
  EXPECT_EQ(unique.size(), sites.size()) << "duplicate site names";

  size_t declared = 0;
#define HQL_EXPECT_SITE_LISTED(ident, name)             \
  EXPECT_EQ(unique.count(ident), 1u) << #ident << " (" << ident \
                                     << ") missing from registry";   \
  ++declared;
  HQL_FAILPOINT_SITE_LIST(HQL_EXPECT_SITE_LISTED)
#undef HQL_EXPECT_SITE_LISTED
  EXPECT_EQ(sites.size(), declared);
}

#ifndef NDEBUG

TEST(FailPointMechanicsTest, AfterNSkipsThenFiresEveryLaterHit) {
  DisarmAllFailPoints();
  ArmFailPoint(kFailPointTupleAppend, FailPointSpec::AfterN(2));
  ExecGovernor gov;
  GovernorScope scope(&gov);
  for (int i = 0; i < 5; ++i) {
    (void)Relation::FromTuples(1, {hql::testing::IntRow({i})});
  }
  // Hits 1 and 2 skip; hits 3, 4, 5 fire.
  EXPECT_EQ(FailPointFireCount(kFailPointTupleAppend), 3u);
  EXPECT_TRUE(gov.tripped());
  EXPECT_EQ(gov.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(gov.status().message().find(kFailPointTupleAppend),
            std::string::npos);
  DisarmAllFailPoints();
}

TEST(FailPointMechanicsTest, ProbabilityIsDeterministicPerSeed) {
  DisarmAllFailPoints();
  auto run = [] {
    ArmFailPoint(kFailPointTupleAppend, FailPointSpec::Probability(0.5, 42));
    // No ambient governor: fires only count, nothing trips.
    for (int i = 0; i < 200; ++i) {
      (void)Relation::FromTuples(1, {hql::testing::IntRow({i})});
    }
    return FailPointFireCount(kFailPointTupleAppend);
  };
  uint64_t first = run();
  uint64_t second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 40u);   // p=0.5 over 200 hits
  EXPECT_LT(first, 160u);
  DisarmAllFailPoints();
}

TEST(FailPointMechanicsTest, DisarmedSitesNeverFire) {
  DisarmAllFailPoints();
  ExecGovernor gov;
  GovernorScope scope(&gov);
  (void)Relation::FromTuples(1, {hql::testing::IntRow({1})});
  EXPECT_FALSE(gov.tripped());
}

#else  // NDEBUG: the macro compiles to nothing, armed or not.

TEST(FailPointMechanicsTest, SitesAreCompiledOutInRelease) {
  DisarmAllFailPoints();
  ArmFailPoint(kFailPointTupleAppend, FailPointSpec::AfterN(0));
  ExecGovernor gov;
  GovernorScope scope(&gov);
  (void)Relation::FromTuples(1, {hql::testing::IntRow({1})});
  EXPECT_EQ(FailPointFireCount(kFailPointTupleAppend), 0u);
  EXPECT_FALSE(gov.tripped());
  DisarmAllFailPoints();
}

#endif

}  // namespace
}  // namespace hql
