#include "hql/enf.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "hql/collapse.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

TEST(EnfTest, Recognizer) {
  QueryPtr pure = U(Rel("A1"), Rel("B1"));
  EXPECT_TRUE(IsEnf(pure));

  QueryPtr subst_state = When(Rel("A1"), Sub1(Rel("B1"), "A1"));
  EXPECT_TRUE(IsEnf(subst_state));

  QueryPtr update_state = When(Rel("A1"), Upd(Ins("A1", Rel("B1"))));
  EXPECT_FALSE(IsEnf(update_state));

  QueryPtr composed = When(
      Rel("A1"), Comp(Sub1(Rel("B1"), "A1"), Sub1(Rel("A1"), "B1")));
  EXPECT_FALSE(IsEnf(composed));

  // A non-ENF state hidden inside a binding is detected.
  QueryPtr nested = When(Rel("A1"), Sub1(update_state, "A1"));
  EXPECT_FALSE(IsEnf(nested));
}

TEST(EnfTest, ConvertsUpdatesAndCompositions) {
  Schema schema = PropertySchema();
  QueryPtr q = When(U(Rel("A1"), Rel("B1")),
                    Upd(Seq(Ins("A1", Rel("B1")), Del("B1", Rel("A1")))));
  ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema));
  EXPECT_TRUE(IsEnf(enf));
  ASSERT_EQ(enf->kind(), QueryKind::kWhen);
  ASSERT_EQ(enf->state()->kind(), HypoKind::kSubst);
  // The sequence composes into one substitution with bindings for both.
  EXPECT_NE(enf->state()->BindingFor("A1"), nullptr);
  EXPECT_NE(enf->state()->BindingFor("B1"), nullptr);
  // del(B1, A1) reads A1's *updated* value: A1 u B1.
  EXPECT_TRUE(enf->state()->BindingFor("B1")->Equals(
      *Diff(Rel("B1"), U(Rel("A1"), Rel("B1")))));
}

TEST(EnfTest, PreservesSemanticsRandomized) {
  Rng rng(123);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  for (int trial = 0; trial < 250; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema));
    EXPECT_TRUE(IsEnf(enf)) << q->ToString();
    ASSERT_OK_AND_ASSIGN(Relation before, EvalDirect(q, db));
    ASSERT_OK_AND_ASSIGN(Relation after, EvalDirect(enf, db));
    EXPECT_EQ(before, after) << q->ToString() << "\n-->\n" << enf->ToString();
  }
}

TEST(ModEnfTest, Recognizer) {
  QueryPtr atomic = When(Rel("A1"), Upd(Seq(Ins("A1", Rel("B1")),
                                            Del("B1", Rel("A1")))));
  EXPECT_TRUE(IsModEnf(atomic));
  QueryPtr subst = When(Rel("A1"), Sub1(Rel("B1"), "A1"));
  EXPECT_FALSE(IsModEnf(subst));
}

TEST(ModEnfTest, FlattensCompositionsOfUpdates) {
  Schema schema = PropertySchema();
  QueryPtr q = When(Rel("A1"), Comp(Upd(Ins("A1", Rel("B1"))),
                                    Upd(Del("A1", Rel("B1")))));
  ASSERT_OK_AND_ASSIGN(QueryPtr mod, ToModEnf(q, schema));
  EXPECT_TRUE(IsModEnf(mod));
  ASSERT_EQ(mod->state()->kind(), HypoKind::kUpdateState);
  EXPECT_EQ(mod->state()->update()->kind(), UpdateKind::kSeq);
}

TEST(ModEnfTest, RejectsSubstitutionsAndConditionals) {
  Schema schema = PropertySchema();
  QueryPtr subst = When(Rel("A1"), Sub1(Rel("B1"), "A1"));
  EXPECT_EQ(ToModEnf(subst, schema).status().code(),
            StatusCode::kUnimplemented);
  QueryPtr cond = When(
      Rel("A1"),
      Upd(If(Rel("B1"), Ins("A1", Rel("B1")), Del("A1", Rel("B1")))));
  EXPECT_EQ(ToModEnf(cond, schema).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ModEnfTest, PreservesSemanticsRandomized) {
  Rng rng(131);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  int converted = 0;
  for (int trial = 0; trial < 250; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    auto mod = ToModEnf(q, schema);
    if (!mod.ok()) continue;  // substitutions in the input: expected
    ++converted;
    EXPECT_TRUE(IsModEnf(mod.value()));
    ASSERT_OK_AND_ASSIGN(Relation before, EvalDirect(q, db));
    ASSERT_OK_AND_ASSIGN(Relation after, EvalDirect(mod.value(), db));
    EXPECT_EQ(before, after) << q->ToString();
  }
  EXPECT_GT(converted, 50);
}

// ---------------------------------------------------------------------------
// Collapse.
// ---------------------------------------------------------------------------

TEST(CollapseTest, PureQueryIsOneBlock) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  QueryPtr q = Sel(Gt(Col(0), Int(1)), U(Rel("R"), Rel("S")));
  ASSERT_OK_AND_ASSIGN(CollapsedPtr tree, Collapse(q, schema));
  EXPECT_EQ(tree->kind, CollapsedKind::kBlock);
  EXPECT_TRUE(tree->holes.empty());
  EXPECT_TRUE(tree->block->Equals(*q));
}

TEST(CollapseTest, Example52Shape) {
  // Q = (Q1 when e1) isect (R join sigma(Q2 when e2)): the root block is
  // #0 isect (R join sigma(#1)) with two when-holes.
  Schema schema = MakeSchema({{"Q1", 2}, {"Q2", 2}, {"R", 2}});
  QueryPtr q1_when = When(Rel("Q1"), Sub1(Rel("R"), "Q1"));
  QueryPtr q2_when = When(Rel("Q2"), Sub1(Rel("R"), "Q2"));
  QueryPtr q = N(q1_when, Join(Eq(Col(0), Col(2)), Rel("R"),
                               Sel(Gt(Col(0), Int(1)), q2_when)));
  ASSERT_OK_AND_ASSIGN(CollapsedPtr tree, Collapse(q, schema));
  ASSERT_EQ(tree->kind, CollapsedKind::kBlock);
  ASSERT_EQ(tree->holes.size(), 2u);
  EXPECT_EQ(tree->hole_arities[0], 2u);
  EXPECT_EQ(tree->hole_arities[1], 2u);
  EXPECT_EQ(tree->holes[0]->kind, CollapsedKind::kWhen);
  EXPECT_EQ(tree->holes[1]->kind, CollapsedKind::kWhen);
  // The block query references the placeholders.
  QueryPtr expected_block =
      N(Rel("#0"), Join(Eq(Col(0), Col(2)), Rel("R"),
                        Sel(Gt(Col(0), Int(1)), Rel("#1"))));
  EXPECT_TRUE(tree->block->Equals(*expected_block))
      << tree->block->ToString();
}

TEST(CollapseTest, WhenRootWithSubstBindings) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  QueryPtr q = When(X(Rel("R"), Rel("S")), Sub1(U(Rel("R"), Rel("S")), "R"));
  ASSERT_OK_AND_ASSIGN(CollapsedPtr tree, Collapse(q, schema));
  ASSERT_EQ(tree->kind, CollapsedKind::kWhen);
  EXPECT_FALSE(tree->state_is_update);
  ASSERT_EQ(tree->bindings.size(), 1u);
  EXPECT_EQ(tree->bindings[0].rel_name, "R");
  EXPECT_EQ(tree->input->kind, CollapsedKind::kBlock);
}

TEST(CollapseTest, WhenRootWithUpdateAtoms) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  QueryPtr q = When(Rel("R"),
                    Upd(Seq(Ins("R", Rel("S")), Del("S", Rel("R")))));
  ASSERT_OK_AND_ASSIGN(CollapsedPtr tree, Collapse(q, schema));
  ASSERT_EQ(tree->kind, CollapsedKind::kWhen);
  EXPECT_TRUE(tree->state_is_update);
  ASSERT_EQ(tree->atoms.size(), 2u);
  EXPECT_TRUE(tree->atoms[0].is_insert);
  EXPECT_EQ(tree->atoms[0].rel_name, "R");
  EXPECT_FALSE(tree->atoms[1].is_insert);
  EXPECT_EQ(tree->atoms[1].rel_name, "S");
}

TEST(CollapseTest, RejectsComposition) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  QueryPtr q = When(Rel("R"),
                    Comp(Sub1(Rel("S"), "R"), Sub1(Rel("R"), "S")));
  EXPECT_EQ(Collapse(q, schema).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CollapseTest, PlaceholderNames) {
  EXPECT_EQ(PlaceholderName(0), "#0");
  EXPECT_EQ(PlaceholderName(12), "#12");
  EXPECT_TRUE(IsPlaceholderName("#3"));
  EXPECT_FALSE(IsPlaceholderName("R"));
  EXPECT_FALSE(IsPlaceholderName(""));
}

}  // namespace
}  // namespace hql
