#include "hql/subst.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/metrics.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(SubstTest, ApplyReplacesOccurrences) {
  // Paper Example 3.1: rho = {(S - R)/R, sigma_r(R)/S},
  // Q = pi_x(R x S) u V  ==>  sub(Q, rho) = (pi_x((S-R) x sigma_r(R))) u V.
  Substitution rho = Substitution::Make(
      {Binding{"R", Diff(Rel("S"), Rel("R"))},
       Binding{"S", Sel(Gt(Col(0), Int(0)), Rel("R"))}});
  QueryPtr q = U(Proj({0}, X(Rel("R"), Rel("S"))), Rel("V"));
  QueryPtr expected =
      U(Proj({0}, X(Diff(Rel("S"), Rel("R")),
                    Sel(Gt(Col(0), Int(0)), Rel("R")))),
        Rel("V"));
  EXPECT_TRUE(rho.Apply(q)->Equals(*expected));
}

TEST(SubstTest, ApplyIsSimultaneous) {
  // {S/R, R/S} swaps, it does not chain.
  Substitution rho = Substitution::Make(
      {Binding{"R", Rel("S")}, Binding{"S", Rel("R")}});
  QueryPtr q = X(Rel("R"), Rel("S"));
  EXPECT_TRUE(rho.Apply(q)->Equals(*X(Rel("S"), Rel("R"))));
}

TEST(SubstTest, IdentityApply) {
  Substitution id;
  QueryPtr q = U(Rel("R"), Rel("S"));
  EXPECT_EQ(id.Apply(q), q);  // same node, not just equal
}

TEST(SubstTest, ComposeExample33) {
  // Paper Example 3.3: rho1 = {(S-R)/R, sigma_r(R)/S},
  // rho2 = {pi_g(R join T)/S, sigma_p(S)/V}; then rho1 # rho2 =
  // {(S-R)/R, pi_g((S-R) join T)/S, sigma_p(sigma_r(R))/V}.
  ScalarExprPtr sel_r = Gt(Col(0), Int(1));
  ScalarExprPtr sel_p = Lt(Col(0), Int(9));
  ScalarExprPtr join_g = Eq(Col(0), Col(1));
  Substitution rho1 = Substitution::Make(
      {Binding{"R", Diff(Rel("S"), Rel("R"))},
       Binding{"S", Sel(sel_r, Rel("R"))}});
  Substitution rho2 = Substitution::Make(
      {Binding{"S", Proj({0}, Join(join_g, Rel("R"), Rel("T")))},
       Binding{"V", Sel(sel_p, Rel("S"))}});
  Substitution composed = rho1.ComposeWith(rho2);

  EXPECT_EQ(composed.Domain(),
            (std::vector<std::string>{"R", "S", "V"}));
  EXPECT_TRUE(composed.Get("R")->Equals(*Diff(Rel("S"), Rel("R"))));
  EXPECT_TRUE(composed.Get("S")->Equals(
      *Proj({0}, Join(join_g, Diff(Rel("S"), Rel("R")), Rel("T")))));
  EXPECT_TRUE(
      composed.Get("V")->Equals(*Sel(sel_p, Sel(sel_r, Rel("R")))));
}

TEST(SubstTest, Lemma32SubOfComposition) {
  // sub(Q, rho1 # rho2) == sub(sub(Q, rho2), rho1), and # is associative.
  Rng rng(42);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  for (int trial = 0; trial < 200; ++trial) {
    auto random_subst = [&]() {
      std::vector<std::string> names = schema.RelationNames();
      rng.Shuffle(&names);
      Substitution s;
      size_t count = 1 + static_cast<size_t>(rng.Uniform(0, 2));
      for (size_t i = 0; i < count && i < names.size(); ++i) {
        size_t arity = schema.ArityOf(names[i]).value();
        s.Bind(names[i], RandomQuery(&rng, schema, arity, options));
      }
      return s;
    };
    Substitution r1 = random_subst();
    Substitution r2 = random_subst();
    Substitution r3 = random_subst();
    QueryPtr q = RandomQuery(&rng, schema, 2, options);

    QueryPtr via_composed = r1.ComposeWith(r2).Apply(q);
    QueryPtr via_seq = r1.Apply(r2.Apply(q));
    EXPECT_TRUE(via_composed->Equals(*via_seq))
        << via_composed->ToString() << "\nvs\n"
        << via_seq->ToString();

    // Associativity.
    Substitution left = r1.ComposeWith(r2).ComposeWith(r3);
    Substitution right = r1.ComposeWith(r2.ComposeWith(r3));
    QueryPtr ql = left.Apply(q);
    QueryPtr qr = right.Apply(q);
    EXPECT_TRUE(ql->Equals(*qr));
    EXPECT_EQ(left.Domain(), right.Domain());
  }
}

TEST(SubstTest, Lemma35SubVsApply) {
  // [sub(Q, rho)](DB) == [Q](apply(DB, rho)).
  Rng rng(7);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, options.literal_domain);
    Substitution rho;
    rho.Bind("A2", RandomQuery(&rng, schema, 2, options));
    rho.Bind("B1", RandomQuery(&rng, schema, 1, options));
    QueryPtr q = RandomQuery(&rng, schema, 2, options);

    ASSERT_OK_AND_ASSIGN(Relation lhs, EvalDirect(rho.Apply(q), db));
    ASSERT_OK_AND_ASSIGN(Database moved, ApplySubstitution(rho, db));
    ASSERT_OK_AND_ASSIGN(Relation rhs, EvalDirect(q, moved));
    EXPECT_EQ(lhs, rhs) << q->ToString();
  }
}

TEST(SubstTest, Lemma36ComposeVsSequentialApply) {
  // apply(DB, rho1 # rho2) == apply(apply(DB, rho1), rho2).
  Rng rng(11);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, options.literal_domain);
    Substitution r1;
    r1.Bind("A1", RandomQuery(&rng, schema, 1, options));
    r1.Bind("B2", RandomQuery(&rng, schema, 2, options));
    Substitution r2;
    r2.Bind("B2", RandomQuery(&rng, schema, 2, options));
    r2.Bind("A3", RandomQuery(&rng, schema, 3, options));

    ASSERT_OK_AND_ASSIGN(Database composed,
                         ApplySubstitution(r1.ComposeWith(r2), db));
    ASSERT_OK_AND_ASSIGN(Database step1, ApplySubstitution(r1, db));
    ASSERT_OK_AND_ASSIGN(Database step2, ApplySubstitution(r2, step1));
    EXPECT_EQ(composed, step2);
  }
}

TEST(SubstTest, BindingManipulation) {
  Substitution s = Substitution::Make(
      {Binding{"R", Rel("S")}, Binding{"T", Rel("T")}, Binding{"V", Rel("R")}});
  EXPECT_TRUE(s.Has("R"));
  s.Remove("R");
  EXPECT_FALSE(s.Has("R"));
  s.DropIdentityBindings();  // T/T goes away
  EXPECT_FALSE(s.Has("T"));
  EXPECT_TRUE(s.Has("V"));
  s.RestrictTo({"X"});
  EXPECT_TRUE(s.empty());
}

TEST(SubstTest, ToHypoExprRoundTrip) {
  Substitution s = Substitution::Make(
      {Binding{"R", Rel("S")}, Binding{"V", U(Rel("R"), Rel("S"))}});
  HypoExprPtr h = s.ToHypoExpr();
  ASSERT_EQ(h->kind(), HypoKind::kSubst);
  ASSERT_EQ(h->bindings().size(), 2u);
  EXPECT_TRUE(h->BindingFor("R")->Equals(*Rel("S")));
}

}  // namespace
}  // namespace hql
