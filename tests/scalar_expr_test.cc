#include "ast/scalar_expr.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "tests/test_util.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::IntRow;

TEST(ScalarExprTest, ColumnAndLiteral) {
  Tuple t = IntRow({10, 20});
  EXPECT_EQ(Col(1)->Evaluate(t), Value::Int(20));
  EXPECT_EQ(Int(5)->Evaluate(t), Value::Int(5));
  EXPECT_EQ(Str("a")->Evaluate(t), Value::Str("a"));
  // Out-of-range columns evaluate to null (typecheck rejects them earlier).
  EXPECT_TRUE(Col(9)->Evaluate(t).is_null());
}

TEST(ScalarExprTest, Arithmetic) {
  Tuple t = IntRow({7, 2});
  EXPECT_EQ(Add(Col(0), Col(1))->Evaluate(t), Value::Int(9));
  EXPECT_EQ(Sub(Col(0), Col(1))->Evaluate(t), Value::Int(5));
  EXPECT_EQ(Mul(Col(0), Col(1))->Evaluate(t), Value::Int(14));
  EXPECT_EQ(ScalarExpr::Binary(ScalarOp::kDiv, Col(0), Col(1))->Evaluate(t),
            Value::Int(3));
  EXPECT_EQ(ScalarExpr::Binary(ScalarOp::kMod, Col(0), Col(1))->Evaluate(t),
            Value::Int(1));
}

TEST(ScalarExprTest, ArithmeticEdgeCases) {
  Tuple t = IntRow({7, 0});
  // Division / modulo by zero yield null.
  EXPECT_TRUE(
      ScalarExpr::Binary(ScalarOp::kDiv, Col(0), Col(1))->Evaluate(t).is_null());
  EXPECT_TRUE(
      ScalarExpr::Binary(ScalarOp::kMod, Col(0), Col(1))->Evaluate(t).is_null());
  // Arithmetic on non-numbers yields null.
  EXPECT_TRUE(Add(Str("a"), Int(1))->Evaluate(t).is_null());
  // Mixed int/double widens.
  EXPECT_EQ(Add(Int(1), Dbl(0.5))->Evaluate(t), Value::Double(1.5));
}

TEST(ScalarExprTest, Comparisons) {
  Tuple t = IntRow({3, 5});
  EXPECT_TRUE(Lt(Col(0), Col(1))->EvaluatesTrue(t));
  EXPECT_FALSE(Gt(Col(0), Col(1))->EvaluatesTrue(t));
  EXPECT_TRUE(Le(Col(0), Int(3))->EvaluatesTrue(t));
  EXPECT_TRUE(Ge(Col(1), Int(5))->EvaluatesTrue(t));
  EXPECT_TRUE(Eq(Col(0), Int(3))->EvaluatesTrue(t));
  EXPECT_TRUE(Ne(Col(0), Col(1))->EvaluatesTrue(t));
  // Comparisons across the type order are total, not errors.
  EXPECT_TRUE(Lt(Int(3), Str("a"))->EvaluatesTrue(t));
}

TEST(ScalarExprTest, BooleanConnectives) {
  Tuple t = IntRow({1});
  EXPECT_TRUE(And(Bool(true), Bool(true))->EvaluatesTrue(t));
  EXPECT_FALSE(And(Bool(true), Bool(false))->EvaluatesTrue(t));
  EXPECT_TRUE(Or(Bool(false), Bool(true))->EvaluatesTrue(t));
  EXPECT_FALSE(Or(Bool(false), Bool(false))->EvaluatesTrue(t));
  EXPECT_TRUE(Not(Bool(false))->EvaluatesTrue(t));
  // Non-boolean operands of connectives are treated as false.
  EXPECT_FALSE(And(Int(1), Bool(true))->EvaluatesTrue(t));
  EXPECT_TRUE(Not(Int(1))->EvaluatesTrue(t));
}

TEST(ScalarExprTest, Negation) {
  Tuple t = IntRow({4});
  EXPECT_EQ(ScalarExpr::Unary(ScalarOp::kNeg, Col(0))->Evaluate(t),
            Value::Int(-4));
  EXPECT_EQ(ScalarExpr::Unary(ScalarOp::kNeg, Dbl(1.5))->Evaluate(t),
            Value::Double(-1.5));
  EXPECT_TRUE(
      ScalarExpr::Unary(ScalarOp::kNeg, Str("a"))->Evaluate(t).is_null());
}

TEST(ScalarExprTest, MinArity) {
  EXPECT_EQ(Int(3)->MinArity(), 0u);
  EXPECT_EQ(Col(2)->MinArity(), 3u);
  EXPECT_EQ(And(Eq(Col(0), Int(1)), Gt(Col(4), Int(2)))->MinArity(), 5u);
}

TEST(ScalarExprTest, ShiftColumns) {
  ScalarExprPtr e = And(Eq(Col(0), Int(1)), Lt(Col(1), Col(2)));
  ScalarExprPtr shifted = e->ShiftColumns(3);
  EXPECT_EQ(shifted->ToString(), "(($3 = 1) and ($4 < $5))");
  // Semantics: shifted expression over a padded tuple agrees.
  Tuple t = IntRow({9, 9, 9, 1, 2, 5});
  Tuple base = IntRow({1, 2, 5});
  EXPECT_EQ(e->EvaluatesTrue(base), shifted->EvaluatesTrue(t));
}

TEST(ScalarExprTest, EqualityAndHash) {
  ScalarExprPtr a = And(Eq(Col(0), Int(1)), Gt(Col(1), Int(2)));
  ScalarExprPtr b = And(Eq(Col(0), Int(1)), Gt(Col(1), Int(2)));
  ScalarExprPtr c = And(Eq(Col(0), Int(1)), Gt(Col(1), Int(3)));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_EQ(a->Hash(), b->Hash());
  // Literals of different types are not equal even if values coincide
  // numerically.
  EXPECT_FALSE(Int(1)->Equals(*Dbl(1.0)));
}

TEST(ScalarExprTest, ToStringAndNodeCount) {
  ScalarExprPtr e = Or(Not(Eq(Col(0), Int(1))), Lt(Col(1), Int(5)));
  EXPECT_EQ(e->ToString(), "((not ($0 = 1)) or ($1 < 5))");
  EXPECT_EQ(e->NodeCount(), 8u);
}

TEST(ScalarExprTest, ShortCircuit) {
  // `and` short-circuits: the right side's division by zero never runs,
  // and even if it did, it would yield null (treated as false).
  Tuple t = IntRow({0});
  ScalarExprPtr e =
      And(Gt(Col(0), Int(5)),
          Gt(ScalarExpr::Binary(ScalarOp::kDiv, Int(1), Col(0)), Int(0)));
  EXPECT_FALSE(e->EvaluatesTrue(t));
}

}  // namespace
}  // namespace hql
