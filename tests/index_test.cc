// Secondary-index layer tests: RelationIndex probe correctness, the
// per-base install-once cache (sharing, invalidation on mutation, copy vs
// move semantics), the overlay probe path across delta application and the
// consolidation boundary, the frequency-driven advisor, the sargable
// extractor, and randomized agreement of the index-backed kernels with the
// scan kernels over version trees.

#include "storage/index.h"

#include "common/exec_context.h"

#include <gtest/gtest.h>

#include <vector>

#include "ast/builders.h"
#include "ast/scalar_expr.h"
#include "common/rng.h"
#include "eval/index_exec.h"
#include "eval/ra_eval.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/view.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::IntRow;
using ::hql::testing::Ints;

std::vector<Tuple> ProbedTuples(const Relation& base,
                                const RelationIndex& index,
                                const Tuple& key) {
  std::vector<Tuple> out;
  for (uint32_t pos : index.Probe(key)) out.push_back(base.tuples()[pos]);
  return out;
}

TEST(RelationIndexTest, SingleColumnProbe) {
  Relation r = Ints({{1, 10}, {1, 20}, {2, 30}, {3, 40}});
  RelationIndex index(r, {0});
  EXPECT_EQ(index.distinct_keys(), 3u);
  EXPECT_EQ(index.indexed_rows(), 4u);

  EXPECT_EQ(ProbedTuples(r, index, IntRow({1})),
            (std::vector<Tuple>{IntRow({1, 10}), IntRow({1, 20})}));
  EXPECT_EQ(ProbedTuples(r, index, IntRow({3})),
            (std::vector<Tuple>{IntRow({3, 40})}));
  EXPECT_TRUE(index.Probe(IntRow({99})).empty());
}

TEST(RelationIndexTest, MultiColumnProbe) {
  Relation r = Ints({{1, 10, 5}, {1, 20, 5}, {1, 20, 6}, {2, 20, 5}});
  RelationIndex index(r, {0, 1});
  EXPECT_EQ(index.distinct_keys(), 3u);
  EXPECT_EQ(ProbedTuples(r, index, IntRow({1, 20})),
            (std::vector<Tuple>{IntRow({1, 20, 5}), IntRow({1, 20, 6})}));
  EXPECT_TRUE(index.Probe(IntRow({2, 10})).empty());
}

TEST(RelationIndexTest, TypeSensitiveKeys) {
  // Int(1) and Double(1.0) are distinct values library-wide; the index must
  // keep them in separate buckets, matching kEq scan semantics.
  Relation r = Relation::FromTuples(
      1, {Tuple{Value::Int(1)}, Tuple{Value::Double(1.0)}});
  RelationIndex index(r, {0});
  EXPECT_EQ(index.distinct_keys(), 2u);
  EXPECT_EQ(index.Probe(Tuple{Value::Int(1)}).size(), 1u);
  EXPECT_EQ(index.Probe(Tuple{Value::Double(1.0)}).size(), 1u);
}

TEST(RelationIndexTest, PositionsAscendWithinBucket) {
  Relation r = Ints({{5, 1}, {5, 2}, {5, 3}, {7, 1}});
  RelationIndex index(r, {0});
  RelationIndex::PosSpan span = index.Probe(IntRow({5}));
  ASSERT_EQ(span.size(), 3u);
  for (size_t i = 1; i < span.size(); ++i) {
    EXPECT_LT(span.data[i - 1], span.data[i]);
  }
}

TEST(IndexCacheTest, IndexOnBuildsOnceAndShares) {
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  Relation r = Ints({{1, 10}, {2, 20}});
  RelationIndexPtr a = r.IndexOn({0});
  RelationIndexPtr b = r.IndexOn({0});
  RelationIndexPtr c = r.ExistingIndex({0});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a.get(), c.get());
  ExecStats after = ctx.Snapshot();
  EXPECT_EQ(after.indexes_built, 1u);
  EXPECT_EQ(after.indexes_shared, 2u);

  // A different column set is a different index.
  RelationIndexPtr d = r.IndexOn({1});
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(ctx.Snapshot().indexes_built, 2u);
}

TEST(IndexCacheTest, ExistingIndexIsNullBeforeBuild) {
  Relation r = Ints({{1, 10}});
  EXPECT_EQ(r.ExistingIndex({0}), nullptr);
  r.IndexOn({0});
  EXPECT_NE(r.ExistingIndex({0}), nullptr);
  EXPECT_EQ(r.ExistingIndex({1}), nullptr);
}

TEST(IndexCacheTest, MutationInvalidatesCache) {
  Relation r = Ints({{1, 10}, {2, 20}});
  r.IndexOn({0});
  ASSERT_NE(r.ExistingIndex({0}), nullptr);
  r.Insert(IntRow({3, 30}));
  EXPECT_EQ(r.ExistingIndex({0}), nullptr);

  RelationIndexPtr rebuilt = r.IndexOn({0});
  EXPECT_EQ(rebuilt->indexed_rows(), 3u);
  EXPECT_EQ(rebuilt->Probe(IntRow({3})).size(), 1u);

  r.Erase(IntRow({1, 10}));
  EXPECT_EQ(r.ExistingIndex({0}), nullptr);
}

TEST(IndexCacheTest, CopiesDropTheCacheMovesCarryIt) {
  Relation r = Ints({{1, 10}});
  r.IndexOn({0});

  Relation copy = r;  // a copy is a fresh mutable value: no cache
  EXPECT_EQ(copy.ExistingIndex({0}), nullptr);
  EXPECT_NE(r.ExistingIndex({0}), nullptr);

  Relation moved = std::move(r);  // a move transfers the cache
  EXPECT_NE(moved.ExistingIndex({0}), nullptr);
}

IndexConfig ManualConfig() {
  IndexConfig config;
  config.mode = IndexMode::kManual;
  config.min_index_rows = 1;
  return config;
}

TEST(IndexedFilterTest, OverlayProbeBeforeAndAfterApplyDelta) {
  IndexConfig config = ManualConfig();
  RelationView flat(Ints({{1, 10}, {1, 20}, {2, 30}, {3, 40}}));
  flat.base()->IndexOn({0});
  ScalarExprPtr pred = Eq(Col(0), Int(1));

  std::optional<Relation> hit = TryIndexedFilter(flat, pred, config);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, FilterRelation(flat, *pred));

  // Stack a delta touching the probed key on both sides: delete one base
  // match, add a new one. Force overlay stacking so the base (and its
  // index) stays shared.
  RelationView overlay = flat.ApplyDelta({IntRow({1, 99})}, {IntRow({1, 10})},
                                         /*consolidate_fraction=*/100.0);
  ASSERT_EQ(overlay.base().get(), flat.base().get());
  std::optional<Relation> patched = TryIndexedFilter(overlay, pred, config);
  ASSERT_TRUE(patched.has_value());
  EXPECT_EQ(*patched, Ints({{1, 20}, {1, 99}}));
  EXPECT_EQ(*patched, FilterRelation(overlay, *pred));
}

TEST(IndexedFilterTest, ConsolidationBoundaryDropsTheSharedIndex) {
  // A delta past kConsolidateFraction consolidates into a fresh base: the
  // old base's index no longer applies, and the probe path reports a miss
  // (manual mode, nothing built on the new base) instead of using it.
  IndexConfig config = ManualConfig();
  RelationView flat(Ints({{1, 10}, {2, 20}, {3, 30}, {4, 40}}));
  flat.base()->IndexOn({0});

  std::vector<Tuple> adds;
  for (int i = 0; i < 10; ++i) adds.push_back(IntRow({1, 100 + i}));
  RelationView merged = flat.ApplyDelta(adds, {});
  ASSERT_TRUE(merged.is_flat());  // 10 > 0.25 * 4: consolidated
  ASSERT_NE(merged.base().get(), flat.base().get());

  ScalarExprPtr pred = Eq(Col(0), Int(1));
  EXPECT_FALSE(TryIndexedFilter(merged, pred, config).has_value());

  // Building on the new base restores the probe path, with the merged rows.
  merged.base()->IndexOn({0});
  std::optional<Relation> hit = TryIndexedFilter(merged, pred, config);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 11u);
  EXPECT_EQ(*hit, FilterRelation(merged, *pred));
}

TEST(IndexedFilterTest, ResidualAndModeGates) {
  IndexConfig config = ManualConfig();
  RelationView view(Ints({{1, 10}, {1, 20}, {2, 30}}));
  view.base()->IndexOn({0});

  // Equality + residual: the probe narrows, the residual filters.
  ScalarExprPtr pred = And(Eq(Col(0), Int(1)), Gt(Col(1), Int(15)));
  std::optional<Relation> hit = TryIndexedFilter(view, pred, config);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Ints({{1, 20}}));

  // No equality conjunct: not sargable.
  EXPECT_FALSE(
      TryIndexedFilter(view, Gt(Col(1), Int(0)), config).has_value());

  // Off mode never probes.
  IndexConfig off;
  EXPECT_FALSE(TryIndexedFilter(view, pred, off).has_value());

  // Small bases are never probed.
  IndexConfig big_floor = ManualConfig();
  big_floor.min_index_rows = 1000;
  EXPECT_FALSE(TryIndexedFilter(view, pred, big_floor).has_value());

  // Out-of-arity equality columns (null semantics) never probe.
  ScalarExprPtr oob = And(Eq(Col(0), Int(1)), Eq(Col(7), Int(1)));
  EXPECT_FALSE(TryIndexedFilter(view, oob, config).has_value());
}

TEST(IndexedJoinTest, ProbesLargerSideAndPatchesOverlay) {
  IndexConfig config = ManualConfig();
  RelationView small(Ints({{1, 100}, {2, 200}, {9, 900}}));
  RelationView big_flat(
      Ints({{1, 11}, {1, 12}, {2, 21}, {3, 31}, {4, 41}, {5, 51}}));
  big_flat.base()->IndexOn({0});
  RelationView big = big_flat.ApplyDelta({IntRow({2, 22})}, {IntRow({1, 12})},
                                         /*consolidate_fraction=*/100.0);
  ASSERT_EQ(big.base().get(), big_flat.base().get());

  // small.$0 = big.$2 with small on the left (arity 2).
  ScalarExprPtr pred = Eq(Col(0), Col(2));
  std::optional<Relation> hit = TryIndexedJoin(small, big, pred, config);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, JoinRelations(small, big, pred));
  EXPECT_EQ(*hit, Ints({{1, 100, 1, 11}, {2, 200, 2, 21}, {2, 200, 2, 22}}));

  // Orientation flip: big on the left gives the same content modulo column
  // order, still via the big side's index.
  ScalarExprPtr flipped = Eq(Col(0), Col(2));
  std::optional<Relation> hit2 = TryIndexedJoin(big, small, flipped, config);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(*hit2, JoinRelations(big, small, flipped));
}

TEST(IndexAdvisorTest, BuildsAtThreshold) {
  Relation r = Ints({{1, 10}, {2, 20}});
  RelationPtr base = std::make_shared<const Relation>(std::move(r));

  IndexAdvisor advisor(/*build_threshold=*/3);
  EXPECT_EQ(advisor.Advise(base, {0}), nullptr);  // 1st access
  EXPECT_EQ(advisor.Advise(base, {0}), nullptr);  // 2nd
  RelationIndexPtr built = advisor.Advise(base, {0});  // 3rd: builds
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(advisor.Advise(base, {0}).get(), built.get());  // now cached
  EXPECT_EQ(advisor.stats().accesses, 4u);
  EXPECT_EQ(advisor.stats().builds, 1u);

  // A different column set counts separately.
  EXPECT_EQ(advisor.Advise(base, {1}), nullptr);
}

TEST(SargableTest, ExtractsAscendingPrefixAndResidual) {
  // $2 = 7 and 5 = $0 and $1 > 3 -> columns {0, 2}, residual {$1 > 3}.
  ScalarExprPtr pred = And(And(Eq(Col(2), Int(7)), Eq(Int(5), Col(0))),
                           Gt(Col(1), Int(3)));
  std::optional<SargablePredicate> sarg = ExtractSargable(pred);
  ASSERT_TRUE(sarg.has_value());
  EXPECT_EQ(sarg->columns, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(sarg->key, (Tuple{Value::Int(5), Value::Int(7)}));
  ASSERT_EQ(sarg->residual.size(), 1u);

  // Duplicate equality on one column: first one keys, second is residual.
  ScalarExprPtr dup = And(Eq(Col(0), Int(1)), Eq(Col(0), Int(2)));
  std::optional<SargablePredicate> s2 = ExtractSargable(dup);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->columns, (std::vector<size_t>{0}));
  EXPECT_EQ(s2->residual.size(), 1u);

  // No column-literal equality at all.
  EXPECT_FALSE(ExtractSargable(Gt(Col(0), Int(1))).has_value());
  EXPECT_FALSE(ExtractSargable(Eq(Col(0), Col(1))).has_value());
  EXPECT_FALSE(ExtractSargable(nullptr).has_value());
}

TEST(FlattenConjunctsTest, FlattensAndTreesOnly) {
  std::vector<ScalarExprPtr> out;
  FlattenConjuncts(And(And(Eq(Col(0), Int(1)), Gt(Col(1), Int(2))),
                       Or(Eq(Col(2), Int(3)), Eq(Col(2), Int(4)))),
                   &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2]->op(), ScalarOp::kOr);

  out.clear();
  FlattenConjuncts(nullptr, &out);
  EXPECT_TRUE(out.empty());
}

// Randomized property: on version trees of overlay states, the indexed
// kernels agree bit-identically with the scan kernels — for every policy,
// before and after deltas, across consolidations.
TEST(IndexPropertyTest, IndexedKernelsMatchScansOnVersionTrees) {
  Rng rng(20260806);
  IndexAdvisor advisor(/*build_threshold=*/1);
  IndexConfig config;
  config.mode = IndexMode::kAdvisor;
  config.advisor = &advisor;
  config.min_index_rows = 1;

  for (int trial = 0; trial < 40; ++trial) {
    // A base relation and a chain of random deltas stacked on it.
    size_t rows = 20 + static_cast<size_t>(rng.Uniform(0, 40));
    std::vector<Tuple> tuples;
    for (size_t i = 0; i < rows; ++i) {
      tuples.push_back(IntRow({rng.Uniform(0, 8), rng.Uniform(0, 50)}));
    }
    RelationView view(Relation::FromTuples(2, std::move(tuples)));

    for (int depth = 0; depth < 4; ++depth) {
      std::vector<Tuple> adds, dels;
      for (int i = 0; i < 3; ++i) {
        adds.push_back(IntRow({rng.Uniform(0, 8), rng.Uniform(51, 99)}));
      }
      if (!view.base()->tuples().empty()) {
        dels.push_back(view.base()->tuples()[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(view.base()->size()) - 1))]);
      }
      view = view.ApplyDelta(adds, dels);

      ScalarExprPtr pred =
          rng.Uniform(0, 1) == 0
              ? Eq(Col(0), Int(rng.Uniform(0, 8)))
              : And(Eq(Col(0), Int(rng.Uniform(0, 8))),
                    Gt(Col(1), Int(rng.Uniform(0, 50))));
      std::optional<Relation> indexed = TryIndexedFilter(view, pred, config);
      ASSERT_TRUE(indexed.has_value()) << "trial " << trial;
      EXPECT_EQ(*indexed, FilterRelation(view, *pred))
          << "trial " << trial << " depth " << depth;

      // Join against a small probe side through the same machinery.
      std::vector<Tuple> probe_tuples;
      for (int i = 0; i < 5; ++i) {
        probe_tuples.push_back(IntRow({rng.Uniform(0, 8)}));
      }
      RelationView probe(Relation::FromTuples(1, std::move(probe_tuples)));
      ScalarExprPtr jpred = Eq(Col(0), Col(1));
      std::optional<Relation> joined =
          TryIndexedJoin(probe, view, jpred, config);
      ASSERT_TRUE(joined.has_value()) << "trial " << trial;
      EXPECT_EQ(*joined, JoinRelations(probe, view, jpred))
          << "trial " << trial << " depth " << depth;
    }
  }
}

TEST(DatabaseBuildIndexTest, ValidatesAndBuilds) {
  Schema schema = hql::testing::MakeSchema({{"R", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1, 10}, {2, 20}})));

  ASSERT_OK_AND_ASSIGN(RelationIndexPtr index, db.BuildIndex("R", {0}));
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->indexed_rows(), 2u);

  EXPECT_FALSE(db.BuildIndex("missing", {0}).ok());
  EXPECT_FALSE(db.BuildIndex("R", {}).ok());
  EXPECT_FALSE(db.BuildIndex("R", {2}).ok());
  EXPECT_FALSE(db.BuildIndex("R", {1, 0}).ok());
}

}  // namespace
}  // namespace hql
