// Per-execution observability: ExecContext scoping, charge routing, the
// deterministic family rollup, JSON round-tripping, and — the property the
// whole redesign exists for — two concurrent families each reporting
// exactly their own work (run under TSan in CI).

#include "common/exec_context.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ast/builders.h"
#include "common/check.h"
#include "common/json.h"
#include "common/rng.h"
#include "opt/explain.h"
#include "opt/session.h"
#include "storage/view.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(ExecContextTest, ScopesNestAndRestore) {
  EXPECT_EQ(CurrentExecContext(), nullptr);
  ExecContext outer;
  {
    ExecContextScope outer_scope(&outer);
    EXPECT_EQ(CurrentExecContext(), &outer);
    ExecContext inner;
    {
      ExecContextScope inner_scope(&inner);
      EXPECT_EQ(CurrentExecContext(), &inner);
      // nullptr shields: charges fall through to the process default.
      ExecContextScope shield(nullptr);
      EXPECT_EQ(CurrentExecContext(), nullptr);
      EXPECT_EQ(&AmbientExecContext(), &ProcessDefaultExecContext());
    }
    EXPECT_EQ(CurrentExecContext(), &outer);
  }
  EXPECT_EQ(CurrentExecContext(), nullptr);
}

TEST(ExecContextTest, ChargesLandOnInstalledContextNotProcessDefault) {
  ExecStats before = ProcessDefaultExecContext().Snapshot();
  ExecContext ctx;
  {
    ExecContextScope scope(&ctx);
    AmbientExecContext().AddViewCreated();
    AmbientExecContext().AddViewTuplesShared(7);
    AmbientExecContext().AddIndexProbe();
    AmbientExecContext().AddMemoHit();
    AmbientExecContext().AddGovernorTrip(GovernorTripKind::kDeadline);
  }
  ExecStats got = ctx.Snapshot();
  EXPECT_EQ(got.views_created, 1u);
  EXPECT_EQ(got.view_tuples_shared, 7u);
  EXPECT_EQ(got.index_probes, 1u);
  EXPECT_EQ(got.memo_hits, 1u);
  EXPECT_EQ(got.governor_deadline_trips, 1u);

  ExecStats after = ProcessDefaultExecContext().Snapshot();
  EXPECT_EQ(after.views_created, before.views_created);
  EXPECT_EQ(after.index_probes, before.index_probes);
  EXPECT_EQ(after.memo_hits, before.memo_hits);
}

TEST(ExecContextTest, ViewLayerChargesAmbientContext) {
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  Relation base = Ints({{1, 2}, {3, 4}, {5, 6}});
  RelationView view(std::make_shared<Relation>(base));
  EXPECT_EQ(view.size(), 3u);
  ExecStats stats = ctx.Snapshot();
  EXPECT_GE(stats.views_created, 1u);
  EXPECT_GE(stats.view_tuples_shared, 3u);
}

TEST(ExecContextTest, MergeFromAddsCountersMaxesHighWatersKeepsFirstRoute) {
  ExecStats a;
  a.views_created = 2;
  a.governor_max_tuples_charged = 10;
  a.route = "lazy";
  a.spans.push_back({"select", "lazy", 5, 3, 11});
  ExecStats b;
  b.views_created = 3;
  b.governor_max_tuples_charged = 7;
  b.route = "eager";
  b.spans.push_back({"join", "eager", 9, 2, 13});

  ExecStats merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.views_created, 5u);
  EXPECT_EQ(merged.governor_max_tuples_charged, 10u);
  EXPECT_EQ(merged.route, "lazy");  // first non-empty route wins
  ASSERT_EQ(merged.spans.size(), 2u);
  EXPECT_EQ(merged.spans[0].op, "select");
  EXPECT_EQ(merged.spans[1].op, "join");

  // Same inputs, same order: identical rollup.
  ExecStats again;
  again.MergeFrom(a);
  again.MergeFrom(b);
  EXPECT_EQ(again.views_created, merged.views_created);
  EXPECT_EQ(again.route, merged.route);
  EXPECT_EQ(again.spans.size(), merged.spans.size());
}

TEST(ExecContextTest, ToJsonParsesBackWithAllCounters) {
  ExecStats stats;
  stats.memo_hits = 3;
  stats.views_created = 4;
  stats.index_probes = 5;
  stats.governor_max_rewrite_nodes_charged = 6;
  stats.route = "hybrid-delta";
  stats.spans.push_back({"select-when", "delta", 100, 42, 17});

  ASSERT_OK_AND_ASSIGN(JsonPtr root, ParseJson(stats.ToJson()));
  ASSERT_TRUE(root->is_object());
  EXPECT_EQ(root->Get("schema")->string_value(), "hql-exec-stats/v1");
  EXPECT_EQ(root->Get("memo_hits")->number(), 3.0);
  EXPECT_EQ(root->Get("views_created")->number(), 4.0);
  EXPECT_EQ(root->Get("index_probes")->number(), 5.0);
  EXPECT_EQ(root->Get("governor_max_rewrite_nodes_charged")->number(), 6.0);
  EXPECT_EQ(root->Get("route")->string_value(), "hybrid-delta");
  const auto& spans = root->Get("spans")->items();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0]->Get("op")->string_value(), "select-when");
  EXPECT_EQ(spans[0]->Get("route")->string_value(), "delta");
  EXPECT_EQ(spans[0]->Get("rows_in")->number(), 100.0);
  EXPECT_EQ(spans[0]->Get("rows_out")->number(), 42.0);
}

TEST(ExecContextTest, TraceSpanRecordsOnlyWhenTracingIsOn) {
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  {
    TraceSpan span("select", 10);
    EXPECT_FALSE(span.active());
    span.set_rows_out(4);
  }
  EXPECT_TRUE(ctx.Snapshot().spans.empty());

  ctx.set_tracing(true);
  {
    ExecRouteScope route("lazy");
    TraceSpan span("select", 10);
    EXPECT_TRUE(span.active());
    span.set_rows_out(4);
  }
  ExecStats stats = ctx.Snapshot();
  ASSERT_EQ(stats.spans.size(), 1u);
  EXPECT_EQ(stats.spans[0].op, "select");
  EXPECT_EQ(stats.spans[0].route, "lazy");
  EXPECT_EQ(stats.spans[0].rows_in, 10u);
  EXPECT_EQ(stats.spans[0].rows_out, 4u);
}

TEST(ExecContextTest, CategoryResetsAreIndependent) {
  ExecContext ctx;
  ctx.AddViewCreated();
  ctx.AddIndexProbe();
  ctx.AddMemoHit();
  ctx.AddLazyFallback();
  ctx.ResetViewCounters();
  ExecStats stats = ctx.Snapshot();
  EXPECT_EQ(stats.views_created, 0u);
  EXPECT_EQ(stats.index_probes, 1u);
  EXPECT_EQ(stats.memo_hits, 1u);
  EXPECT_EQ(stats.governor_lazy_fallbacks, 1u);
}

// ---------------------------------------------------------------------------
// Family-level accounting.

class FamilyStatsTest : public ::testing::Test {
 protected:
  // A deterministic E9-style family: `alts` leaf deletions over R.
  std::vector<HypoExprPtr> FamilyStates(int alts, int64_t offset) {
    std::vector<HypoExprPtr> states;
    for (int i = 0; i < alts; ++i) {
      int64_t lo = offset + i * 10;
      states.push_back(Upd(Del(
          "R", Sel(And(Ge(Col(0), Int(lo)), Lt(Col(0), Int(lo + 10))),
                   Rel("R")))));
    }
    return states;
  }

  Database MakeDb(uint64_t seed, size_t rows) {
    Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
    Rng rng(seed);
    Database db(schema);
    HQL_CHECK(db.Set("R", GenRelation(&rng, rows, 2, 200)).ok());
    HQL_CHECK(db.Set("S", GenRelation(&rng, rows, 2, 200)).ok());
    return db;
  }

  QueryPtr FamilyQuery() { return Sel(Ge(Col(0), Int(100)), Rel("R")); }
};

TEST_F(FamilyStatsTest, SlotAndFamilyStatsAreDeterministicAcrossThreadCounts) {
  Database db = MakeDb(11, 400);
  std::vector<HypoExprPtr> states = FamilyStates(6, 0);
  QueryPtr query = FamilyQuery();

  auto run = [&](size_t threads, std::vector<ExecStats>* slots,
                 ExecStats* family) {
    ExecContext ctx;
    ExecContextScope scope(&ctx);
    AlternativesOptions options;
    options.strategy = Strategy::kFilter2;
    options.num_threads = threads;
    options.slot_stats = slots;
    options.family_stats = family;
    std::vector<Result<Relation>> out =
        EvalAlternativesPartial(query, states, db, db.schema(), options);
    for (const auto& r : out) EXPECT_OK(r.status());
  };

  std::vector<ExecStats> serial_slots, pooled_slots;
  ExecStats serial_family, pooled_family;
  run(1, &serial_slots, &serial_family);
  run(4, &pooled_slots, &pooled_family);

  ASSERT_EQ(serial_slots.size(), states.size());
  ASSERT_EQ(pooled_slots.size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(serial_slots[i].views_created, pooled_slots[i].views_created)
        << "slot " << i;
    EXPECT_EQ(serial_slots[i].view_tuples_shared,
              pooled_slots[i].view_tuples_shared)
        << "slot " << i;
  }
  EXPECT_EQ(serial_family.views_created, pooled_family.views_created);
  EXPECT_EQ(serial_family.view_tuples_shared,
            pooled_family.view_tuples_shared);
}

TEST_F(FamilyStatsTest, FamilyRollupMergesIntoCallersAmbientContext) {
  Database db = MakeDb(13, 200);
  std::vector<HypoExprPtr> states = FamilyStates(3, 0);

  ExecContext ctx;
  ExecStats family;
  {
    ExecContextScope scope(&ctx);
    AlternativesOptions options;
    options.strategy = Strategy::kFilter2;
    options.num_threads = 2;
    options.family_stats = &family;
    std::vector<Result<Relation>> out = EvalAlternativesPartial(
        FamilyQuery(), states, db, db.schema(), options);
    for (const auto& r : out) EXPECT_OK(r.status());
  }
  EXPECT_GT(family.views_created, 0u);
  ExecStats ambient = ctx.Snapshot();
  EXPECT_GE(ambient.views_created, family.views_created);
  EXPECT_GE(ambient.view_tuples_shared, family.view_tuples_shared);
}

// The tentpole property: two families running concurrently on separate
// threads, each under its own caller-installed ExecContext, report exactly
// the stats of their own (disjoint) workload — verified by comparing
// against the same workloads run serially. Under TSan this also proves the
// charge paths race-free.
TEST_F(FamilyStatsTest, ConcurrentFamiliesAreIsolated) {
  Database small_db = MakeDb(17, 120);
  Database big_db = MakeDb(19, 900);
  QueryPtr query = FamilyQuery();
  std::vector<HypoExprPtr> small_states = FamilyStates(3, 0);
  std::vector<HypoExprPtr> big_states = FamilyStates(8, 40);

  auto run_family = [&](const Database& db,
                        const std::vector<HypoExprPtr>& states) {
    ExecContext ctx;
    ExecContextScope scope(&ctx);
    AlternativesOptions options;
    options.strategy = Strategy::kFilter2;
    options.num_threads = 2;
    std::vector<Result<Relation>> out =
        EvalAlternativesPartial(query, states, db, db.schema(), options);
    for (const auto& r : out) EXPECT_OK(r.status());
    return ctx.Snapshot();
  };

  // Serial baselines.
  ExecStats small_base = run_family(small_db, small_states);
  ExecStats big_base = run_family(big_db, big_states);
  // Disjoint workloads really differ — otherwise isolation is vacuous.
  ASSERT_NE(small_base.view_tuples_shared, big_base.view_tuples_shared);

  // The same two workloads, concurrently.
  ExecStats small_run, big_run;
  std::thread small_thread(
      [&] { small_run = run_family(small_db, small_states); });
  std::thread big_thread([&] { big_run = run_family(big_db, big_states); });
  small_thread.join();
  big_thread.join();

  EXPECT_EQ(small_run.views_created, small_base.views_created);
  EXPECT_EQ(small_run.view_tuples_shared, small_base.view_tuples_shared);
  EXPECT_EQ(small_run.view_tuples_copied, small_base.view_tuples_copied);
  EXPECT_EQ(big_run.views_created, big_base.views_created);
  EXPECT_EQ(big_run.view_tuples_shared, big_base.view_tuples_shared);
  EXPECT_EQ(big_run.view_tuples_copied, big_base.view_tuples_copied);
}

}  // namespace
}  // namespace hql
