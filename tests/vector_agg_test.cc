// Vectorized aggregation tests: engagement gates of TryColumnarAggregate,
// bit-identical agreement of the typed/generic/global kernels with the row
// aggregate (eval/ra_eval.h) across flat bases and overlays, the new
// columnar-aggregate counters, the columnar routing of *-when leaves whose
// delta canonicalizes to nothing, and a randomized property sweep over all
// aggregate functions, key widths and morsel boundaries. The whole file
// runs identically under the forced-scalar build (HQL_NO_SIMD) — nothing
// here may depend on which SIMD tier eval/simd.h selected.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "ast/builders.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "eval/delta.h"
#include "eval/delta_ops.h"
#include "eval/ra_eval.h"
#include "eval/simd.h"
#include "eval/vector_exec.h"
#include "opt/planner.h"
#include "storage/relation.h"
#include "storage/view.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using hql::testing::IntRow;
using hql::testing::Ints;
using hql::testing::MakeSchema;

constexpr AggFunc kAllFuncs[] = {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin,
                                 AggFunc::kMax};

ColumnarConfig TestConfig(size_t morsel_rows = 8, size_t threads = 1) {
  ColumnarConfig config;
  config.mode = ColumnarMode::kAuto;
  config.min_rows = 1;
  config.morsel_rows = morsel_rows;
  config.threads = threads;
  return config;
}

Relation MixedRelation() {
  // Column 0: int keys. Column 1: all double. Column 2: mixed types.
  std::vector<Tuple> rows;
  rows.push_back({Value::Int(1), Value::Double(1.5), Value::Str("a")});
  rows.push_back({Value::Int(1), Value::Double(-2.0), Value::Int(7)});
  rows.push_back({Value::Int(2), Value::Double(0.25), Value::Str("b")});
  rows.push_back({Value::Int(2), Value::Double(4.25), Value::Nul()});
  rows.push_back({Value::Int(3), Value::Double(0.0), Value::Bool(true)});
  return Relation::FromTuples(3, std::move(rows));
}

// ---------------------------------------------------------------------------
// Engagement gates.
// ---------------------------------------------------------------------------

TEST(ColumnarAggregateTest, GatesMirrorTheFilterKernel) {
  Rng rng(307);
  Relation rel = GenRelation(&rng, 100, 2, 10);
  RelationView view(std::make_shared<Relation>(rel));

  ColumnarConfig off;  // mode kOff
  EXPECT_FALSE(
      TryColumnarAggregate(view, {0}, AggFunc::kSum, 1, off).has_value());

  ColumnarConfig small = TestConfig();
  small.min_rows = 1000;  // base too small
  EXPECT_FALSE(
      TryColumnarAggregate(view, {0}, AggFunc::kSum, 1, small).has_value());

  // Out-of-range columns are the row kernels' problem.
  EXPECT_FALSE(
      TryColumnarAggregate(view, {0}, AggFunc::kSum, 9, TestConfig())
          .has_value());
  EXPECT_FALSE(
      TryColumnarAggregate(view, {9}, AggFunc::kSum, 1, TestConfig())
          .has_value());

  // An overlay past max_delta_fraction falls back.
  RelationView heavy = RelationView::Overlay(
      std::make_shared<Relation>(rel),
      {IntRow({200, 1}), IntRow({201, 1})}, {});
  ColumnarConfig strict = TestConfig();
  strict.max_delta_fraction = 0.001;
  EXPECT_FALSE(
      TryColumnarAggregate(heavy, {0}, AggFunc::kSum, 1, strict).has_value());

  EXPECT_TRUE(
      TryColumnarAggregate(view, {0}, AggFunc::kSum, 1, TestConfig())
          .has_value());
}

TEST(ColumnarAggregateTest, ExactnessGatesOnSumAndMinMax) {
  Relation rel = MixedRelation();
  RelationView view(std::make_shared<Relation>(rel));
  ColumnarConfig config = TestConfig(2);

  // Sum over a double or mixed column is order-sensitive: row kernel only.
  EXPECT_FALSE(
      TryColumnarAggregate(view, {0}, AggFunc::kSum, 1, config).has_value());
  EXPECT_FALSE(
      TryColumnarAggregate(view, {0}, AggFunc::kSum, 2, config).has_value());

  // Min/max engage on every encoding for a flat input...
  for (AggFunc func : {AggFunc::kMin, AggFunc::kMax}) {
    for (size_t col : {size_t{0}, size_t{1}, size_t{2}}) {
      auto got = TryColumnarAggregate(view, {0}, func, col, config);
      ASSERT_TRUE(got.has_value()) << AggFuncName(func) << " col " << col;
      EXPECT_EQ(*got, AggregateRelation(view, {0}, func, col))
          << AggFuncName(func) << " col " << col;
    }
  }

  // ...but a sum add that is not an int, and any min/max add hitting the
  // boxed-Value mode or an off-family typed mode, veto vectorization.
  RelationView with_double_add = RelationView::Overlay(
      std::make_shared<Relation>(Ints({{1, 2}, {3, 4}, {5, 6}})),
      {{Value::Int(9), Value::Double(2.5)}}, {});
  EXPECT_FALSE(TryColumnarAggregate(with_double_add, {0}, AggFunc::kSum, 1,
                                    config)
                   .has_value());
  EXPECT_FALSE(TryColumnarAggregate(with_double_add, {0}, AggFunc::kMin, 1,
                                    config)
                   .has_value());
  RelationView mixed_add = RelationView::Overlay(
      std::make_shared<Relation>(MixedRelation()),
      {{Value::Int(9), Value::Double(2.5), Value::Int(1)}}, {});
  EXPECT_FALSE(
      TryColumnarAggregate(mixed_add, {0}, AggFunc::kMax, 2, config)
          .has_value());
  // The row kernel still answers those shapes through the routed entry.
  EXPECT_EQ(VectorizedAggregate(mixed_add, {0}, AggFunc::kMax, 2, config),
            AggregateRelation(mixed_add, {0}, AggFunc::kMax, 2));
}

// ---------------------------------------------------------------------------
// Kernel agreement on crafted shapes.
// ---------------------------------------------------------------------------

TEST(ColumnarAggregateTest, TypedKeysMatchRowKernelPerFunction) {
  Rng rng(311);
  Relation rel = GenRelation(&rng, 300, 3, 12, 50);
  RelationView view(std::make_shared<Relation>(rel));
  for (AggFunc func : kAllFuncs) {
    // One- and two-column int keys take the flat packed-key table.
    for (const std::vector<size_t>& cols :
         {std::vector<size_t>{0}, std::vector<size_t>{0, 1}}) {
      auto got = TryColumnarAggregate(view, cols, func, 2, TestConfig(64));
      ASSERT_TRUE(got.has_value()) << AggFuncName(func);
      EXPECT_EQ(*got, AggregateRelation(view, cols, func, 2))
          << AggFuncName(func) << " keys " << cols.size();
    }
  }
}

TEST(ColumnarAggregateTest, GenericKeysAndWideKeysMatchRowKernel) {
  Relation rel = MixedRelation();
  RelationView view(std::make_shared<Relation>(rel));
  // A generic-encoded key column forces the tuple-keyed fallback table.
  for (AggFunc func : {AggFunc::kCount, AggFunc::kMin, AggFunc::kMax}) {
    auto got = TryColumnarAggregate(view, {2}, func, 1, TestConfig(2));
    ASSERT_TRUE(got.has_value()) << AggFuncName(func);
    EXPECT_EQ(*got, AggregateRelation(view, {2}, func, 1)) << AggFuncName(func);
  }

  // Keys wider than the packed-key limit also go generic.
  Rng rng(313);
  Relation wide = GenRelation(&rng, 200, 6, 4, 3);
  RelationView wview(std::make_shared<Relation>(wide));
  std::vector<size_t> cols = {0, 1, 2, 3, 4};
  auto got = TryColumnarAggregate(wview, cols, AggFunc::kSum, 5, TestConfig(32));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, AggregateRelation(wview, cols, AggFunc::kSum, 5));
}

TEST(ColumnarAggregateTest, GlobalAggregateUsesSegmentReduction) {
  Rng rng(317);
  Relation rel = GenRelation(&rng, 500, 2, 40);
  RelationPtr shared = std::make_shared<Relation>(std::move(rel));
  Relation dels = SampleFraction(&rng, *shared, 0.06);
  Relation adds = GenRelation(&rng, 12, 2, 40);
  for (const RelationView& view :
       {RelationView(shared),
        RelationView::Overlay(shared, adds.tuples(), dels.tuples())}) {
    for (AggFunc func : kAllFuncs) {
      auto got = TryColumnarAggregate(view, {}, func, 1, TestConfig(64));
      ASSERT_TRUE(got.has_value()) << AggFuncName(func);
      EXPECT_EQ(*got, AggregateRelation(view, {}, func, 1))
          << AggFuncName(func);
    }
  }
}

TEST(ColumnarAggregateTest, EmptyAfterDeletionsMatchesRowKernel) {
  Relation rel = Ints({{1, 2}, {3, 4}});
  RelationView view = RelationView::Overlay(
      std::make_shared<Relation>(rel), {}, {IntRow({1, 2}), IntRow({3, 4})});
  // Deleting the whole base is a delta fraction of 1.0; lift the gate so
  // the empty-output path itself is what gets exercised.
  ColumnarConfig config = TestConfig();
  config.max_delta_fraction = 1.0;
  for (AggFunc func : kAllFuncs) {
    auto got = TryColumnarAggregate(view, {0}, func, 1, config);
    ASSERT_TRUE(got.has_value()) << AggFuncName(func);
    EXPECT_EQ(got->size(), 0u) << AggFuncName(func);
    EXPECT_EQ(*got, AggregateRelation(view, {0}, func, 1)) << AggFuncName(func);
  }
}

TEST(ColumnarAggregateTest, CountersChargeTheAggregatePath) {
  Rng rng(331);
  Relation rel = GenRelation(&rng, 200, 2, 10);
  RelationView view(std::make_shared<Relation>(rel));
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  Relation out = VectorizedAggregate(view, {0}, AggFunc::kSum, 1,
                                     TestConfig(64));
  EXPECT_EQ(out, AggregateRelation(view, {0}, AggFunc::kSum, 1));
  ExecStats stats = ctx.Snapshot();
  EXPECT_EQ(stats.columnar_agg_rows_vectorized, 200u);
  EXPECT_EQ(stats.columnar_agg_groups, out.size());
  EXPECT_EQ(stats.columnar_morsels_dispatched, 4u);  // ceil(200 / 64)
  EXPECT_EQ(stats.columnar_rows_fallback, 0u);

  // A vetoed shape (double sum) charges the fallback counter instead.
  Relation doubles(2);
  {
    std::vector<Tuple> rows;
    for (int i = 0; i < 50; ++i) {
      rows.push_back({Value::Int(i), Value::Double(i + 0.5)});
    }
    doubles = Relation::FromTuples(2, std::move(rows));
  }
  RelationView dview(std::make_shared<Relation>(std::move(doubles)));
  VectorizedAggregate(dview, {0}, AggFunc::kSum, 1, TestConfig(64));
  EXPECT_EQ(ctx.Snapshot().columnar_rows_fallback, 50u);
}

// ---------------------------------------------------------------------------
// Columnar-aware *-when routing (EvalFilterD leaves).
// ---------------------------------------------------------------------------

TEST(ColumnarWhenTest, DeltaLeavesRouteThroughTheColumnarScan) {
  Rng rng(337);
  Schema schema = MakeSchema({{"R", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 400, 2, 60)));

  DeltaValue delta;
  delta.Bind("R", DeltaPair(Ints({{1, 1}}), Ints({{2000, 7}})));

  QueryPtr q = Sel(Ge(Col(0), Int(10)), Rel("R"));
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  ASSERT_OK_AND_ASSIGN(
      Relation columnar,
      EvalFilterD(q, db, delta, nullptr, IndexConfig(), TestConfig(64)));
  ASSERT_OK_AND_ASSIGN(Relation row, EvalFilterD(q, db, delta));
  EXPECT_EQ(columnar, row);
  ExecStats stats = ctx.Snapshot();
  EXPECT_GT(stats.columnar_rows_vectorized, 0u);
  EXPECT_EQ(stats.columnar_when_routed, 1u);
}

// Regression: a delta that canonicalizes to nothing against the base (a
// deletion of an absent tuple, an insertion of a present one) used to force
// the row-streaming select-when; it must take the flat columnar fast path.
TEST(ColumnarWhenTest, EmptyAfterCanonicalizationTakesTheFlatFastPath) {
  Rng rng(347);
  Schema schema = MakeSchema({{"R", 2}});
  Database db(schema);
  Relation base = GenRelation(&rng, 300, 2, 50);
  Tuple present = base.tuples()[0];
  ASSERT_OK(db.Set("R", std::move(base)));

  DeltaValue noop;
  noop.Bind("R", DeltaPair(/*d=*/Ints({{100000, 100000}}),
                           /*i=*/Relation::FromSortedUnique(2, {present})));

  QueryPtr q = Sel(Ge(Col(0), Int(5)), Rel("R"));
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  ASSERT_OK_AND_ASSIGN(
      Relation got,
      EvalFilterD(q, db, noop, nullptr, IndexConfig(), TestConfig(64)));
  ASSERT_OK_AND_ASSIGN(Relation want, EvalFilterD(q, db, DeltaValue()));
  EXPECT_EQ(got, want);
  ExecStats stats = ctx.Snapshot();
  EXPECT_GT(stats.columnar_rows_vectorized, 0u);
  EXPECT_EQ(stats.columnar_rows_fallback, 0u);
}

TEST(ColumnarWhenTest, JoinDeltaLeavesRouteThroughTheColumnarJoin) {
  Rng rng(349);
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 300, 2, 40)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 200, 2, 40)));

  DeltaValue delta;
  delta.Bind("R", DeltaPair(Ints({{0, 0}}), Ints({{5000, 3}})));

  QueryPtr q = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  ASSERT_OK_AND_ASSIGN(
      Relation columnar,
      EvalFilterD(q, db, delta, nullptr, IndexConfig(), TestConfig(64)));
  ASSERT_OK_AND_ASSIGN(Relation row, EvalFilterD(q, db, delta));
  EXPECT_EQ(columnar, row);
  EXPECT_EQ(ctx.Snapshot().columnar_when_routed, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end strategy sweep through an aggregate-over-when plan.
// ---------------------------------------------------------------------------

TEST(ColumnarAggregateTest, StrategiesAgreeOnAggregateOverWhen) {
  Rng rng(353);
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 300, 2, 30)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 100, 2, 30)));

  HypoExprPtr state = Upd(Seq(Del("R", Sel(Lt(Col(0), Int(5)), Rel("R"))),
                              Ins("R", Rel("S"))));
  for (AggFunc func : kAllFuncs) {
    QueryPtr q =
        When(Agg({0}, func, 1, Sel(Ge(Col(0), Int(2)), Rel("R"))), state);
    PlannerOptions row_opts;
    ASSERT_OK_AND_ASSIGN(
        Relation want,
        Execute(q, db, schema, Strategy::kDirect, row_opts));
    for (Strategy s : {Strategy::kDirect, Strategy::kLazy, Strategy::kFilter1,
                       Strategy::kFilter2, Strategy::kFilter3,
                       Strategy::kHybrid}) {
      PlannerOptions options;
      options.columnar_mode = ColumnarMode::kAuto;
      options.columnar_min_rows = 1;
      options.columnar_morsel_rows = 64;
      options.columnar_threads = 1;
      ASSERT_OK_AND_ASSIGN(Relation got,
                           Execute(q, db, schema, s, options));
      EXPECT_EQ(got, want) << StrategyName(s) << "/" << AggFuncName(func);
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized property sweep.
// ---------------------------------------------------------------------------

TEST(ColumnarAggregatePropertyTest, VectorizedEqualsRowKernel) {
  Rng rng(359);
  for (int trial = 0; trial < 80; ++trial) {
    size_t arity = 2 + static_cast<size_t>(rng.Uniform(0, 3));
    size_t rows = 1 + static_cast<size_t>(rng.Uniform(0, 400));
    Relation base = GenRelation(&rng, rows, arity, 8, 12);
    RelationPtr shared = std::make_shared<Relation>(std::move(base));
    RelationView view(shared);
    if (rng.Uniform(0, 2) == 0) {
      Relation dels = SampleFraction(&rng, *shared, 0.08);
      Relation adds = GenRelation(&rng, rng.Uniform(0, 12), arity, 8, 12);
      view = RelationView::Overlay(shared, adds.tuples(), dels.tuples());
    }
    ColumnarConfig config = TestConfig(
        /*morsel_rows=*/1 + static_cast<size_t>(rng.Uniform(0, 100)),
        /*threads=*/1 + static_cast<size_t>(rng.Uniform(0, 3)));

    // Random key set (possibly empty = global), random agg column.
    std::vector<size_t> cols;
    for (size_t c = 0; c < arity; ++c) {
      if (rng.Uniform(0, 3) == 0) cols.push_back(c);
    }
    size_t agg_col = static_cast<size_t>(rng.Uniform(0, arity - 1));
    AggFunc func = kAllFuncs[rng.Uniform(0, 3)];

    Relation vectorized =
        VectorizedAggregate(view, cols, func, agg_col, config);
    EXPECT_EQ(vectorized, AggregateRelation(view, cols, func, agg_col))
        << "trial " << trial << " " << AggFuncName(func) << " keys "
        << cols.size() << " agg $" << agg_col << " simd " << SimdIsaName();
  }
}

}  // namespace
}  // namespace hql
