#include "opt/planner.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/metrics.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "opt/estimator.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(EstimatorTest, BaseCases) {
  StatsCatalog stats;
  stats.SetCardinality("R", 1000, 2);
  stats.SetCardinality("S", 100, 2);
  CardinalityEstimator est(stats);
  EXPECT_DOUBLE_EQ(est.EstimateQuery(Rel("R")), 1000.0);
  EXPECT_DOUBLE_EQ(est.EstimateQuery(Empty(2)), 0.0);
  EXPECT_DOUBLE_EQ(est.EstimateQuery(Single({Value::Int(1)})), 1.0);
  EXPECT_DOUBLE_EQ(est.EstimateQuery(U(Rel("R"), Rel("S"))), 1100.0);
  EXPECT_DOUBLE_EQ(est.EstimateQuery(X(Rel("R"), Rel("S"))), 100000.0);
  // Selection shrinks; equality shrinks more than range.
  double eq = est.EstimateQuery(Sel(Eq(Col(0), Int(1)), Rel("R")));
  double range = est.EstimateQuery(Sel(Gt(Col(0), Int(1)), Rel("R")));
  EXPECT_LT(eq, range);
  EXPECT_LT(range, 1000.0);
}

TEST(EstimatorTest, HypotheticalStatesAdjustEnvironment) {
  StatsCatalog stats;
  stats.SetCardinality("R", 1000, 2);
  stats.SetCardinality("S", 100, 2);
  CardinalityEstimator est(stats);
  // R when {ins(R, S)}: R reads as ~1100.
  double card =
      est.EstimateQuery(When(Rel("R"), Upd(Ins("R", Rel("S")))));
  EXPECT_DOUBLE_EQ(card, 1100.0);
  // Deletions shrink.
  double del_card =
      est.EstimateQuery(When(Rel("R"), Upd(Del("R", Rel("S")))));
  EXPECT_LT(del_card, 1000.0);
  // Substitution replaces outright.
  double subst_card = est.EstimateQuery(When(Rel("R"), Sub1(Rel("S"), "R")));
  EXPECT_DOUBLE_EQ(subst_card, 100.0);
}

TEST(EstimatorTest, CostChargesRepeatedWork) {
  // The C_out cost model charges an inlined binding per occurrence, which
  // is what lets the planner see the eager side's advantage under reuse.
  StatsCatalog stats;
  stats.SetCardinality("R", 1000, 2);
  stats.SetCardinality("S", 1000, 2);
  CardinalityEstimator est(stats);
  QueryPtr binding = U(Rel("S"), Rel("S"));
  QueryPtr once = binding;
  QueryPtr twice = U(binding, binding);
  EXPECT_GT(est.EstimateCost(twice), 1.5 * est.EstimateCost(once));
  // Cost dominates cardinality for deep plans: a join's cost includes its
  // children.
  QueryPtr join = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  EXPECT_GT(est.EstimateCost(join), est.EstimateQuery(join));
}

TEST(EstimatorTest, CostOfWhenIncludesStateMaterialization) {
  StatsCatalog stats;
  stats.SetCardinality("R", 1000, 2);
  stats.SetCardinality("S", 500, 2);
  CardinalityEstimator est(stats);
  QueryPtr bare = Sel(Gt(Col(0), Int(1)), Rel("R"));
  QueryPtr hypothetical =
      Query::When(bare, Upd(Ins("R", Sel(Gt(Col(0), Int(2)), Rel("S")))));
  EXPECT_GT(est.EstimateCost(hypothetical), est.EstimateCost(bare));
  // Aggregates shrink estimated cardinality.
  EXPECT_LT(est.EstimateQuery(Agg({0}, AggFunc::kCount, 1, Rel("R"))),
            est.EstimateQuery(Rel("R")));
}

TEST(EstimatorTest, ColumnarScanCostMirrorsExecutorGate) {
  StatsCatalog stats;
  stats.SetCardinality("Big", 1000000, 2);
  stats.SetCardinality("Tiny", 100, 2);
  CardinalityEstimator est(stats);
  // Per-morsel setup plus a discounted per-row charge: strictly cheaper
  // than the row scan on a large base, and cheaper with larger morsels
  // (fewer dispatches).
  double cost = est.EstimateColumnarScanCost("Big", 65536);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, est.EstimateScanCost("Big"));
  EXPECT_LT(cost, est.EstimateColumnarScanCost("Big", 1024));
  // The win gate applies the executor's min_rows threshold: a tiny base
  // never takes the columnar route even though its loop cost is lower.
  EXPECT_TRUE(est.ColumnarScanWins("Big", 4096, 65536));
  EXPECT_FALSE(est.ColumnarScanWins("Tiny", 4096, 65536));
  EXPECT_TRUE(est.ColumnarScanWins("Tiny", 1, 65536));
}

TEST(PlannerTest, AllStrategiesAgreeRandomized) {
  // The headline property: every point of the lazy<->eager spectrum
  // computes the same value.
  Rng rng(191);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    for (Strategy s : {Strategy::kLazy, Strategy::kFilter1,
                       Strategy::kFilter2, Strategy::kHybrid}) {
      auto result = Execute(q, db, schema, s);
      ASSERT_TRUE(result.ok())
          << StrategyName(s) << ": " << result.status().ToString();
      EXPECT_EQ(result.value(), reference)
          << StrategyName(s) << " on " << q->ToString();
    }
    ASSERT_OK_AND_ASSIGN(Relation f3,
                         Execute(q, db, schema, Strategy::kFilter3));
    EXPECT_EQ(f3, reference) << "filter3 on " << q->ToString();
  }
}

TEST(PlannerTest, AllStrategiesAgreeWithConditionals) {
  Rng rng(193);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  for (int trial = 0; trial < 100; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    for (Strategy s :
         {Strategy::kLazy, Strategy::kFilter1, Strategy::kFilter2,
          Strategy::kHybrid}) {
      auto result = Execute(q, db, schema, s);
      ASSERT_TRUE(result.ok())
          << StrategyName(s) << ": " << result.status().ToString();
      EXPECT_EQ(result.value(), reference) << StrategyName(s);
    }
  }
}

TEST(PlannerTest, HybridGoesLazyForCheapSubstitutions) {
  // A tiny body with one occurrence of the bound name: substitution wins.
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));
  StatsCatalog stats = StatsCatalog::FromDatabase(db);
  QueryPtr q = When(Rel("R"), Upd(Ins("R", Rel("S"))));
  ASSERT_OK_AND_ASSIGN(Plan plan, PlanHybrid(q, schema, stats));
  EXPECT_EQ(plan.lazy_decisions, 1);
  EXPECT_EQ(plan.eager_decisions, 0);
  EXPECT_TRUE(IsPureRelAlg(plan.query));
}

TEST(PlannerTest, HybridGuardsAgainstBlowup) {
  // The Example 2.4 chain: the planner must refuse to substitute once the
  // rewritten tree would exceed the cap.
  BlowupSpec spec = BlowupChain(12);
  StatsCatalog stats;
  PlannerOptions options;
  options.max_lazy_tree_size = 500.0;
  ASSERT_OK_AND_ASSIGN(Plan plan,
                       PlanHybrid(spec.query, spec.schema, stats, options));
  EXPECT_GT(plan.eager_decisions, 0);
  // The planned query never exceeds the cap.
  EXPECT_LE(TreeSize(plan.query), 4.0 * 500.0);
}

TEST(PlannerTest, ReuseCountPushesTowardEager) {
  // With heavy reuse, materialization amortizes: expect at least as many
  // eager decisions as with reuse 1 on a body that repeats the bound name.
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  StatsCatalog stats;
  stats.SetCardinality("R", 10000, 2);
  stats.SetCardinality("S", 10000, 2);
  // Body uses R four times: substitution duplicates the state query.
  QueryPtr body = U(U(Rel("R"), Rel("R")),
                    U(Rel("R"), Sel(Gt(Col(0), Int(1)), Rel("R"))));
  QueryPtr q = When(body, Upd(Ins("R", Sel(Gt(Col(0), Int(2)), Rel("S")))));

  PlannerOptions once;
  once.reuse_count = 1.0;
  ASSERT_OK_AND_ASSIGN(Plan plan_once, PlanHybrid(q, schema, stats, once));

  PlannerOptions many;
  many.reuse_count = 1000.0;
  ASSERT_OK_AND_ASSIGN(Plan plan_many, PlanHybrid(q, schema, stats, many));

  EXPECT_GE(plan_many.eager_decisions, plan_once.eager_decisions);
}

TEST(PlannerTest, LazySimplifiesToEmpty) {
  // Example 2.4(b): with a difference in the chain, the lazy strategy plus
  // RA rewriting collapses the whole query to empty — no data touched.
  BlowupSpec spec = BlowupChainWithDifference(10, 5);
  Database db(spec.schema);
  ASSERT_OK_AND_ASSIGN(Relation out,
                       Execute(spec.query, db, spec.schema, Strategy::kLazy));
  EXPECT_TRUE(out.empty());
}

TEST(PlannerTest, DeltaRoutePreservesSemantics) {
  // The hybrid delta route (Section 5.5 dispatch) must never change
  // results, only the engine: compare against a hybrid with the route
  // disabled on random update-chain queries.
  Rng rng(197);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_compose = false;
  PlannerOptions no_delta;
  no_delta.delta_fraction_threshold = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    Database db = RandomDatabase(&rng, schema, 8, 8);
    QueryPtr q = Query::When(RandomQuery(&rng, schema, 2, options),
                             Upd(RandomUpdate(&rng, schema, options)));
    ASSERT_OK_AND_ASSIGN(Relation with_route,
                         Execute(q, db, schema, Strategy::kHybrid));
    ASSERT_OK_AND_ASSIGN(
        Relation without_route,
        Execute(q, db, schema, Strategy::kHybrid, no_delta));
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    EXPECT_EQ(with_route, reference) << q->ToString();
    EXPECT_EQ(without_route, reference) << q->ToString();
  }
}

TEST(PlannerTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kDirect), "direct");
  EXPECT_STREQ(StrategyName(Strategy::kLazy), "lazy");
  EXPECT_STREQ(StrategyName(Strategy::kFilter1), "filter1");
  EXPECT_STREQ(StrategyName(Strategy::kFilter2), "filter2");
  EXPECT_STREQ(StrategyName(Strategy::kFilter3), "filter3");
  EXPECT_STREQ(StrategyName(Strategy::kHybrid), "hybrid");
}

}  // namespace
}  // namespace hql
