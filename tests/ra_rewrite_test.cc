#include "hql/ra_rewrite.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/query.h"
#include "ast/scalar_expr.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

// ---------------------------------------------------------------------------
// Predicate simplification.
// ---------------------------------------------------------------------------

TEST(PredicateSimplifyTest, ConstantFolding) {
  EXPECT_EQ(SimplifyPredicate(Gt(Int(5), Int(3)))->ToString(), "true");
  EXPECT_EQ(SimplifyPredicate(Eq(Int(5), Int(3)))->ToString(), "false");
  EXPECT_EQ(SimplifyPredicate(Add(Int(2), Int(3)))->ToString(), "5");
  EXPECT_EQ(SimplifyPredicate(Not(Bool(false)))->ToString(), "true");
}

TEST(PredicateSimplifyTest, ConnectiveIdentities) {
  ScalarExprPtr p = Gt(Col(0), Int(3));
  EXPECT_TRUE(SimplifyPredicate(And(Bool(true), p))->Equals(*p));
  EXPECT_EQ(SimplifyPredicate(And(Bool(false), p))->ToString(), "false");
  EXPECT_TRUE(SimplifyPredicate(Or(Bool(false), p))->Equals(*p));
  EXPECT_EQ(SimplifyPredicate(Or(Bool(true), p))->ToString(), "true");
  EXPECT_TRUE(SimplifyPredicate(Or(p, p))->Equals(*p));
  EXPECT_TRUE(SimplifyPredicate(And(p, p))->Equals(*p));
}

TEST(PredicateSimplifyTest, NegationPushesThroughComparisons) {
  EXPECT_EQ(SimplifyPredicate(Not(Lt(Col(0), Int(60))))->ToString(),
            "($0 >= 60)");
  EXPECT_EQ(SimplifyPredicate(Not(Not(Gt(Col(0), Int(1)))))->ToString(),
            "($0 > 1)");
  // De Morgan.
  EXPECT_EQ(SimplifyPredicate(
                Not(And(Lt(Col(0), Int(1)), Gt(Col(1), Int(2)))))
                ->ToString(),
            "(($0 >= 1) or ($1 <= 2))");
}

TEST(PredicateSimplifyTest, IntervalMerge) {
  // (A >= 30) and (A >= 60)  ==>  A >= 60 (the Example 2.1(b) step).
  EXPECT_EQ(SimplifyPredicate(
                And(Ge(Col(0), Int(30)), Ge(Col(0), Int(60))))
                ->ToString(),
            "($0 >= 60)");
  // (A > 30) and (A >= 60)  ==>  A >= 60.
  EXPECT_EQ(SimplifyPredicate(
                And(Gt(Col(0), Int(30)), Ge(Col(0), Int(60))))
                ->ToString(),
            "($0 >= 60)");
  // Upper bounds merge too.
  EXPECT_EQ(SimplifyPredicate(
                And(Lt(Col(0), Int(10)), Le(Col(0), Int(20))))
                ->ToString(),
            "($0 < 10)");
  // Contradiction.
  EXPECT_EQ(SimplifyPredicate(
                And(Gt(Col(0), Int(10)), Lt(Col(0), Int(5))))
                ->ToString(),
            "false");
  // Point interval becomes equality.
  EXPECT_EQ(SimplifyPredicate(
                And(Ge(Col(0), Int(7)), Le(Col(0), Int(7))))
                ->ToString(),
            "($0 = 7)");
  // Point interval excluded by a not-equal is false.
  EXPECT_EQ(SimplifyPredicate(And(Eq(Col(0), Int(7)), Ne(Col(0), Int(7))))
                ->ToString(),
            "false");
}

TEST(PredicateSimplifyTest, LiteralOnLeftCanonicalized) {
  EXPECT_EQ(SimplifyPredicate(Lt(Int(30), Col(0)))->ToString(), "($0 > 30)");
  // And the canonical form enables the interval merge.
  EXPECT_EQ(SimplifyPredicate(
                And(Lt(Int(30), Col(0)), Gt(Col(0), Int(60))))
                ->ToString(),
            "($0 > 60)");
}

TEST(PredicateSimplifyTest, TrivialSelfComparisons) {
  EXPECT_EQ(SimplifyPredicate(Eq(Col(1), Col(1)))->ToString(), "true");
  EXPECT_EQ(SimplifyPredicate(Lt(Col(1), Col(1)))->ToString(), "false");
  EXPECT_EQ(SimplifyPredicate(Ge(Col(1), Col(1)))->ToString(), "true");
}

TEST(PredicateSimplifyTest, RandomizedSoundness) {
  Rng rng(55);
  AstGenOptions options;
  for (int trial = 0; trial < 500; ++trial) {
    size_t arity = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    ScalarExprPtr p = RandomPredicate(&rng, arity, options);
    ScalarExprPtr s = SimplifyPredicate(p);
    for (int i = 0; i < 30; ++i) {
      Tuple t;
      for (size_t c = 0; c < arity; ++c) {
        t.push_back(Value::Int(rng.Uniform(0, 7)));
      }
      EXPECT_EQ(p->EvaluatesTrue(t), s->EvaluatesTrue(t))
          << p->ToString() << " vs " << s->ToString() << " on "
          << TupleToString(t);
    }
  }
}

// ---------------------------------------------------------------------------
// Algebraic simplification.
// ---------------------------------------------------------------------------

class SimplifyRaTest : public ::testing::Test {
 protected:
  Schema schema_ = MakeSchema({{"R", 2}, {"S", 2}, {"T", 3}});

  QueryPtr Simplify(const QueryPtr& q) {
    auto result = SimplifyRa(q, schema_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : nullptr;
  }
};

TEST_F(SimplifyRaTest, DifferenceOfEqualIsEmpty) {
  QueryPtr q = Diff(U(Rel("R"), Rel("S")), U(Rel("R"), Rel("S")));
  EXPECT_TRUE(Simplify(q)->Equals(*Empty(2)));
}

TEST_F(SimplifyRaTest, EmptyPropagation) {
  EXPECT_TRUE(Simplify(U(Empty(2), Rel("R")))->Equals(*Rel("R")));
  EXPECT_TRUE(Simplify(N(Rel("R"), Empty(2)))->Equals(*Empty(2)));
  EXPECT_TRUE(Simplify(Diff(Rel("R"), Empty(2)))->Equals(*Rel("R")));
  EXPECT_TRUE(Simplify(Diff(Empty(2), Rel("R")))->Equals(*Empty(2)));
  EXPECT_TRUE(Simplify(X(Empty(2), Rel("T")))->Equals(*Empty(5)));
  EXPECT_TRUE(Simplify(Sel(Gt(Col(0), Int(1)), Empty(2)))->Equals(*Empty(2)));
  EXPECT_TRUE(Simplify(Proj({0}, Empty(2)))->Equals(*Empty(1)));
  EXPECT_TRUE(Simplify(Join(Eq(Col(0), Col(2)), Empty(2), Rel("S")))
                  ->Equals(*Empty(4)));
}

TEST_F(SimplifyRaTest, SelectionRules) {
  // sigma_true == identity; sigma_false == empty.
  EXPECT_TRUE(Simplify(Sel(Bool(true), Rel("R")))->Equals(*Rel("R")));
  EXPECT_TRUE(Simplify(Sel(Bool(false), Rel("R")))->Equals(*Empty(2)));
  // Cascading selections merge with interval simplification.
  QueryPtr q = Sel(Ge(Col(0), Int(30)), Sel(Ge(Col(0), Int(60)), Rel("S")));
  EXPECT_TRUE(Simplify(q)->Equals(*Sel(Ge(Col(0), Int(60)), Rel("S"))));
  // Selection over a product becomes a join (clustering).
  QueryPtr sp = Sel(Eq(Col(0), Col(2)), X(Rel("R"), Rel("S")));
  EXPECT_EQ(Simplify(sp)->kind(), QueryKind::kJoin);
}

TEST_F(SimplifyRaTest, DifferenceWithSelection) {
  // S - sigma_p(S) == sigma_{not p}(S): the Example 2.1(b) rule.
  QueryPtr q = Diff(Rel("S"), Sel(Lt(Col(0), Int(60)), Rel("S")));
  EXPECT_TRUE(Simplify(q)->Equals(*Sel(Ge(Col(0), Int(60)), Rel("S"))));
  // sigma_p(S) - sigma_q(S) == sigma_{p and not q}(S).
  QueryPtr q2 = Diff(Sel(Ge(Col(0), Int(10)), Rel("S")),
                     Sel(Ge(Col(0), Int(20)), Rel("S")));
  QueryPtr s2 = Simplify(q2);
  EXPECT_TRUE(s2->Equals(*Sel(And(Ge(Col(0), Int(10)), Lt(Col(0), Int(20))),
                              Rel("S"))))
      << s2->ToString();
}

TEST_F(SimplifyRaTest, IntersectAbsorption) {
  QueryPtr q = N(Rel("S"), Sel(Gt(Col(0), Int(5)), Rel("S")));
  EXPECT_TRUE(Simplify(q)->Equals(*Sel(Gt(Col(0), Int(5)), Rel("S"))));
  QueryPtr q2 = N(Sel(Ge(Col(0), Int(5)), Rel("S")),
                  Sel(Ge(Col(0), Int(9)), Rel("S")));
  EXPECT_TRUE(Simplify(q2)->Equals(*Sel(Ge(Col(0), Int(9)), Rel("S"))));
}

TEST_F(SimplifyRaTest, IdempotentUnionIntersect) {
  QueryPtr r = Sel(Gt(Col(0), Int(1)), Rel("R"));
  EXPECT_TRUE(Simplify(U(r, r))->Equals(*r));
  EXPECT_TRUE(Simplify(N(r, r))->Equals(*r));
}

TEST_F(SimplifyRaTest, ProjectionRules) {
  // Identity projection disappears.
  EXPECT_TRUE(Simplify(Proj({0, 1}, Rel("R")))->Equals(*Rel("R")));
  // pi over pi composes.
  QueryPtr q = Proj({0}, Proj({1, 0}, Rel("R")));
  EXPECT_TRUE(Simplify(q)->Equals(*Proj({1}, Rel("R"))));
  // pi over a singleton evaluates.
  QueryPtr s = Proj({1, 1}, Single({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(
      Simplify(s)->Equals(*Single({Value::Int(2), Value::Int(2)})));
}

TEST_F(SimplifyRaTest, SingletonSelection) {
  QueryPtr keep = Sel(Gt(Col(0), Int(1)), Single({Value::Int(5)}));
  EXPECT_TRUE(Simplify(keep)->Equals(*Single({Value::Int(5)})));
  QueryPtr drop = Sel(Gt(Col(0), Int(9)), Single({Value::Int(5)}));
  EXPECT_TRUE(Simplify(drop)->Equals(*Empty(1)));
}

TEST_F(SimplifyRaTest, JoinRules) {
  // Join with a false predicate is empty; with true becomes a product.
  EXPECT_TRUE(Simplify(Join(Bool(false), Rel("R"), Rel("S")))
                  ->Equals(*Empty(4)));
  EXPECT_EQ(Simplify(Join(Bool(true), Rel("R"), Rel("S")))->kind(),
            QueryKind::kProduct);
}

TEST_F(SimplifyRaTest, RejectsWhen) {
  QueryPtr q = Query::When(Rel("R"), Sub1(Rel("S"), "R"));
  EXPECT_EQ(SimplifyRa(q, schema_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimplifyRaRandomTest, SoundnessOnRandomQueries) {
  Rng rng(77);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  for (int trial = 0; trial < 300; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    size_t arity = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    QueryPtr q = RandomQuery(&rng, schema, arity, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr s, SimplifyRa(q, schema));
    ASSERT_OK_AND_ASSIGN(Relation before, EvalDirect(q, db));
    ASSERT_OK_AND_ASSIGN(Relation after, EvalDirect(s, db));
    EXPECT_EQ(before, after) << q->ToString() << "\n-->\n" << s->ToString();
  }
}

TEST(SimplifyRaRandomTest, Idempotent) {
  Rng rng(79);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = false;
  for (int trial = 0; trial < 100; ++trial) {
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr once, SimplifyRa(q, schema));
    ASSERT_OK_AND_ASSIGN(QueryPtr twice, SimplifyRa(once, schema));
    EXPECT_TRUE(once->Equals(*twice))
        << once->ToString() << "\n-->\n" << twice->ToString();
  }
}

}  // namespace
}  // namespace hql
