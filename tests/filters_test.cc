#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/filter1.h"
#include "eval/filter2.h"
#include "eval/filter3.h"
#include "hql/collapse.h"
#include "hql/enf.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(Filter1Test, BasicWhenFiltering) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));
  // (R union S) when {(R u S)/R}: R reads as {1, 2}.
  QueryPtr q = When(U(Rel("R"), Rel("S")), Sub1(U(Rel("R"), Rel("S")), "R"));
  ASSERT_OK_AND_ASSIGN(Relation out, RunFilter1(q, db));
  EXPECT_EQ(out, Ints({{1}, {2}}));
}

TEST(Filter1Test, RequiresEnf) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  QueryPtr q = When(Rel("R"), Upd(Ins("R", Rel("S"))));
  EXPECT_EQ(RunFilter1(q, db).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Filter1Test, NestedWhenSmashes) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{5}})));
  // Inner state rebinds R; outer state rebinds S. Both visible inside.
  QueryPtr q = When(When(X(Rel("R"), Rel("S")), Sub1(Rel("S"), "R")),
                    Sub1(Single({Value::Int(9)}), "S"));
  ASSERT_OK_AND_ASSIGN(Relation out, RunFilter1(q, db));
  // Outer first: S := {9}. Inner: R := S = {9}. Result {9} x {9}.
  EXPECT_EQ(out, Ints({{9, 9}}));
}

TEST(Filter1Test, EnvExposedWorker) {
  Schema schema = MakeSchema({{"R", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  XsubValue env;
  env.Bind("R", Ints({{7}}));
  Filter1Options options;
  options.env = &env;
  ASSERT_OK_AND_ASSIGN(Relation out, RunFilter1(Rel("R"), db, options));
  EXPECT_EQ(out, Ints({{7}}));
}

// Proposition 5.1 / 5.3 / 5.4: all three algorithms agree with the direct
// semantics on random hypothetical queries.

class FilterPropertyTest : public ::testing::Test {
 protected:
  Rng rng_{163};
  Schema schema_ = PropertySchema();
};

TEST_F(FilterPropertyTest, Proposition51Filter1Correct) {
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  for (int trial = 0; trial < 250; ++trial) {
    Database db = RandomDatabase(&rng_, schema_, 5, 8);
    QueryPtr q = RandomQuery(&rng_, schema_, 2, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema_));
    ASSERT_OK_AND_ASSIGN(Relation filtered, RunFilter1(enf, db));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, db));
    EXPECT_EQ(filtered, reference) << q->ToString();
  }
}

TEST_F(FilterPropertyTest, Proposition53Filter2Correct) {
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  for (int trial = 0; trial < 250; ++trial) {
    Database db = RandomDatabase(&rng_, schema_, 5, 8);
    QueryPtr q = RandomQuery(&rng_, schema_, 2, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema_));
    ASSERT_OK_AND_ASSIGN(Relation filtered, RunFilter2(enf, db, schema_));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, db));
    EXPECT_EQ(filtered, reference) << q->ToString();
  }
}

TEST_F(FilterPropertyTest, Proposition54Filter3Correct) {
  // Filter3 is total: mod-ENF atoms where possible, precise deltas
  // (Section 5.5) capturing explicit substitutions otherwise.
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  for (int trial = 0; trial < 300; ++trial) {
    Database db = RandomDatabase(&rng_, schema_, 5, 8);
    QueryPtr q = RandomQuery(&rng_, schema_, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation filtered, RunFilter3(q, db, schema_));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, db));
    EXPECT_EQ(filtered, reference) << q->ToString();
  }
}

TEST_F(FilterPropertyTest, AllAlgorithmsAgreeOnUpdateChains) {
  // Queries whose states are pure update chains run under every algorithm.
  AstGenOptions options;
  options.max_depth = 2;
  options.allow_compose = false;
  for (int trial = 0; trial < 200; ++trial) {
    Database db = RandomDatabase(&rng_, schema_, 6, 8);
    QueryPtr body = RandomQuery(&rng_, schema_, 2, options);
    UpdatePtr u = RandomUpdate(&rng_, schema_, options);
    QueryPtr q = When(body, Upd(u));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, db));

    ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema_));
    ASSERT_OK_AND_ASSIGN(Relation f1, RunFilter1(enf, db));
    ASSERT_OK_AND_ASSIGN(Relation f2, RunFilter2(enf, db, schema_));
    EXPECT_EQ(f1, reference) << q->ToString();
    EXPECT_EQ(f2, reference) << q->ToString();

    ASSERT_OK_AND_ASSIGN(Relation f3, RunFilter3(q, db, schema_));
    EXPECT_EQ(f3, reference) << q->ToString();
  }
}

TEST(Filter3Test, AtomChainsSeeEarlierAtoms) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));
  // ins(R, S); ins(S, R): the second atom reads R's updated value {1,2}.
  QueryPtr q = When(Rel("S"), Upd(Seq(Ins("R", Rel("S")),
                                      Ins("S", Rel("R")))));
  ASSERT_OK_AND_ASSIGN(Relation out, RunFilter3(q, db, schema));
  EXPECT_EQ(out, Ints({{1}, {2}}));
}

TEST(Filter3Test, DeleteThenInsertSameTuple) {
  Schema schema = MakeSchema({{"R", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}, {2}})));
  QueryPtr t1 = Single({Value::Int(1)});
  // del(R, {1}); ins(R, {1}) leaves 1 present (smash I beats earlier D).
  QueryPtr q = When(Rel("R"), Upd(Seq(Del("R", t1), Ins("R", t1))));
  ASSERT_OK_AND_ASSIGN(Relation out, RunFilter3(q, db, schema));
  EXPECT_EQ(out, Ints({{1}, {2}}));
  // And the reverse order removes it.
  QueryPtr q2 = When(Rel("R"), Upd(Seq(Ins("R", t1), Del("R", t1))));
  ASSERT_OK_AND_ASSIGN(Relation out2, RunFilter3(q2, db, schema));
  EXPECT_EQ(out2, Ints({{2}}));
}

TEST(Filter2Test, CollapsedTreeReuse) {
  // Collapse once, evaluate against several states (Example 2.2's family).
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  QueryPtr q = When(U(Rel("R"), Rel("S")), Sub1(U(Rel("R"), Rel("S")), "R"));
  ASSERT_OK_AND_ASSIGN(CollapsedPtr tree, Collapse(q, schema));
  Filter2Options options;
  options.collapsed = tree;
  for (int i = 0; i < 3; ++i) {
    Database db(schema);
    ASSERT_OK(db.Set("R", Ints({{i}})));
    ASSERT_OK(db.Set("S", Ints({{10 + i}})));
    ASSERT_OK_AND_ASSIGN(Relation out,
                         RunFilter2(nullptr, db, schema, options));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, db));
    EXPECT_EQ(out, reference);
  }
}

}  // namespace
}  // namespace hql
