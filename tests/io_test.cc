#include "storage/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tests/test_util.h"
#include "common/rng.h"
#include "workload/generators.h"

namespace hql {
namespace {

using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(DatabaseIoTest, RoundTripBasic) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1, 10}, {2, 20}})));
  ASSERT_OK(db.Set("S", Ints({{7}})));

  std::string text = DatabaseToText(db);
  ASSERT_OK_AND_ASSIGN(Database loaded, DatabaseFromText(text));
  EXPECT_EQ(loaded, db);
  EXPECT_EQ(loaded.schema().NumRelations(), 2u);
}

TEST(DatabaseIoTest, RoundTripAllValueTypes) {
  Schema schema = MakeSchema({{"T", 5}});
  Database db(schema);
  ASSERT_OK(db.Set(
      "T", Relation::FromTuples(
               5, {{Value::Int(-3), Value::Double(2.5), Value::Str("a'b"),
                    Value::Bool(true), Value::Nul()},
                   {Value::Int(0), Value::Double(-0.125),
                    Value::Str(""), Value::Bool(false), Value::Nul()}})));
  ASSERT_OK_AND_ASSIGN(Database loaded, DatabaseFromText(DatabaseToText(db)));
  EXPECT_EQ(loaded, db) << DatabaseToText(db);
}

TEST(DatabaseIoTest, RoundTripRandomized) {
  Rng rng(811);
  Schema schema = PropertySchema();
  for (int trial = 0; trial < 30; ++trial) {
    Database db = RandomDatabase(&rng, schema, 20, 50);
    ASSERT_OK_AND_ASSIGN(Database loaded,
                         DatabaseFromText(DatabaseToText(db)));
    EXPECT_EQ(loaded, db);
  }
}

TEST(DatabaseIoTest, CommentsAndBlankLines) {
  const char* text =
      "# a comment\n"
      "\n"
      "relation R 1\n"
      "  (1)\n"
      "# inline comment line\n"
      "(2)\n"
      "end\n";
  ASSERT_OK_AND_ASSIGN(Database db, DatabaseFromText(text));
  EXPECT_EQ(db.GetRef("R"), Ints({{1}, {2}}));
}

TEST(DatabaseIoTest, Errors) {
  EXPECT_FALSE(DatabaseFromText("(1)\n").ok());  // tuple outside block
  EXPECT_FALSE(DatabaseFromText("relation R 1\n(1)\n").ok());  // no end
  EXPECT_FALSE(DatabaseFromText("relation R 0\nend\n").ok());  // arity 0
  EXPECT_FALSE(
      DatabaseFromText("relation R 1\n(1, 2)\nend\n").ok());  // arity clash
  EXPECT_FALSE(DatabaseFromText("relation R 1\n(x)\nend\n").ok());
  EXPECT_FALSE(
      DatabaseFromText("relation R 1\nrelation S 1\nend\nend\n").ok());
  EXPECT_FALSE(DatabaseFromText("end\n").ok());
  EXPECT_FALSE(
      DatabaseFromText("relation R 1\n(1) extra\nend\n").ok());
}

TEST(DatabaseIoTest, SaveAndLoadFile) {
  Schema schema = MakeSchema({{"R", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{42}})));
  std::string path = ::testing::TempDir() + "/hql_io_test.db";
  ASSERT_OK(SaveDatabase(db, path));
  ASSERT_OK_AND_ASSIGN(Database loaded, LoadDatabase(path));
  EXPECT_EQ(loaded, db);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatabase(path).ok());
}

}  // namespace
}  // namespace hql
