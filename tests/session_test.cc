#include "opt/session.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;
using ::hql::testing::MakeSchema;

TEST(SessionTest, SmallChangeUsesDelta) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Rng rng(1301);
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 1000, 2, 2000)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 1000, 2, 2000)));
  // Touches ~1% of R.
  HypoExprPtr state = Upd(Del("R", Sel(Lt(Col(0), Int(20)), Rel("R"))));
  ASSERT_OK_AND_ASSIGN(HypotheticalSession session,
                       HypotheticalSession::Create(state, db, schema));
  EXPECT_TRUE(session.uses_delta());
  EXPECT_LT(session.materialized_tuples(), 100u);
}

TEST(SessionTest, LargeChangeUsesXsub) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  Rng rng(1303);
  Database db(schema);
  ASSERT_OK(db.Set("R", GenRelation(&rng, 500, 2, 1000)));
  ASSERT_OK(db.Set("S", GenRelation(&rng, 500, 2, 1000)));
  // Replaces R wholesale.
  HypoExprPtr state = Sub1(Rel("S"), "R");
  ASSERT_OK_AND_ASSIGN(HypotheticalSession session,
                       HypotheticalSession::Create(state, db, schema));
  EXPECT_FALSE(session.uses_delta());
}

TEST(SessionTest, EvaluateMatchesWhenSemantics) {
  Rng rng(1307);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = RandomDatabase(&rng, schema, 8, 8);
    HypoExprPtr state = RandomHypo(&rng, schema, options);
    ASSERT_OK_AND_ASSIGN(HypotheticalSession session,
                         HypotheticalSession::Create(state, db, schema));
    for (int i = 0; i < 5; ++i) {
      QueryPtr q = RandomQuery(&rng, schema, 2, options);
      ASSERT_OK_AND_ASSIGN(Relation via_session, session.Evaluate(q));
      ASSERT_OK_AND_ASSIGN(Relation reference,
                           EvalDirect(Query::When(q, state), db));
      EXPECT_EQ(via_session, reference)
          << q->ToString() << " when " << state->ToString();
    }
  }
}

TEST(SessionTest, NestedWhatIfsOnTopOfSession) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  Database db(schema);
  ASSERT_OK(db.Set("R", Ints({{1}})));
  ASSERT_OK(db.Set("S", Ints({{2}})));
  HypoExprPtr base_state = Upd(Ins("R", Rel("S")));
  ASSERT_OK_AND_ASSIGN(HypotheticalSession session,
                       HypotheticalSession::Create(base_state, db, schema));
  // A further hypothetical inside the session's world.
  QueryPtr nested =
      Query::When(Rel("R"), Upd(Ins("R", Single({Value::Int(9)}))));
  ASSERT_OK_AND_ASSIGN(Relation out, session.Evaluate(nested));
  EXPECT_EQ(out, Ints({{1}, {2}, {9}}));
  // Session state and real state are unaffected.
  ASSERT_OK_AND_ASSIGN(Relation plain, session.Evaluate(Rel("R")));
  EXPECT_EQ(plain, Ints({{1}, {2}}));
  EXPECT_EQ(db.GetRef("R"), Ints({{1}}));
}

TEST(SessionTest, ParserDrivenEndToEnd) {
  Schema schema = MakeSchema({{"emp", 2}, {"dept", 2}});
  Database db(schema);
  ASSERT_OK(db.Set("emp", Ints({{1, 10}, {2, 20}})));
  ASSERT_OK(db.Set("dept", Ints({{10, 500}, {20, 900}})));
  ASSERT_OK_AND_ASSIGN(HypoExprPtr state,
                       ParseHypo("{ins(emp, {(3, 10)})}"));
  ASSERT_OK_AND_ASSIGN(HypotheticalSession session,
                       HypotheticalSession::Create(state, db, schema));
  ASSERT_OK_AND_ASSIGN(QueryPtr q,
                       ParseQuery("pi[0](sigma[$1 = 10](emp))"));
  ASSERT_OK_AND_ASSIGN(Relation out, session.Evaluate(q));
  EXPECT_EQ(out, Ints({{1}, {3}}));
}

TEST(SessionTest, Rejections) {
  Schema schema = MakeSchema({{"R", 1}});
  Database db(schema);
  EXPECT_FALSE(
      HypotheticalSession::Create(nullptr, db, schema).ok());
  ASSERT_OK_AND_ASSIGN(
      HypotheticalSession session,
      HypotheticalSession::Create(Upd(Ins("R", Rel("R"))), db, schema));
  EXPECT_FALSE(session.Evaluate(nullptr).ok());
  EXPECT_FALSE(session.Evaluate(Rel("Unknown")).ok());
}

}  // namespace
}  // namespace hql
