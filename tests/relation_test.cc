#include "storage/relation.h"

#include <gtest/gtest.h>

#include "storage/stats.h"
#include "tests/test_util.h"

namespace hql {
namespace {

using ::hql::testing::IntRow;
using ::hql::testing::Ints;

TEST(RelationTest, FromTuplesSortsAndDedups) {
  Relation r = Ints({{3, 1}, {1, 2}, {3, 1}, {2, 0}});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.ToString(), "{(1, 2), (2, 0), (3, 1)}");
}

TEST(RelationTest, ContainsAndInsertErase) {
  Relation r = Ints({{1}, {3}});
  EXPECT_TRUE(r.Contains(IntRow({1})));
  EXPECT_FALSE(r.Contains(IntRow({2})));
  r.Insert(IntRow({2}));
  EXPECT_TRUE(r.Contains(IntRow({2})));
  EXPECT_EQ(r.size(), 3u);
  r.Insert(IntRow({2}));  // duplicate is a no-op
  EXPECT_EQ(r.size(), 3u);
  r.Erase(IntRow({1}));
  EXPECT_FALSE(r.Contains(IntRow({1})));
  r.Erase(IntRow({99}));  // absent is a no-op
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, UnionIntersectDifference) {
  Relation a = Ints({{1}, {2}, {3}});
  Relation b = Ints({{2}, {3}, {4}});
  EXPECT_EQ(a.UnionWith(b), Ints({{1}, {2}, {3}, {4}}));
  EXPECT_EQ(a.IntersectWith(b), Ints({{2}, {3}}));
  EXPECT_EQ(a.DifferenceWith(b), Ints({{1}}));
  EXPECT_EQ(b.DifferenceWith(a), Ints({{4}}));
}

TEST(RelationTest, SetOpsWithEmpty) {
  Relation a = Ints({{1}, {2}});
  Relation empty(1);
  EXPECT_EQ(a.UnionWith(empty), a);
  EXPECT_EQ(a.IntersectWith(empty), empty);
  EXPECT_EQ(a.DifferenceWith(empty), a);
  EXPECT_EQ(empty.DifferenceWith(a), empty);
}

TEST(RelationTest, ProductArityAndOrder) {
  Relation a = Ints({{1}, {2}});
  Relation b = Ints({{10, 20}, {30, 40}});
  Relation p = a.ProductWith(b);
  EXPECT_EQ(p.arity(), 3u);
  EXPECT_EQ(p.size(), 4u);
  // The product of sorted inputs is emitted in sorted order.
  EXPECT_EQ(p.ToString(),
            "{(1, 10, 20), (1, 30, 40), (2, 10, 20), (2, 30, 40)}");
}

TEST(RelationTest, ProductWithEmptyIsEmpty) {
  Relation a = Ints({{1}, {2}});
  Relation empty(2);
  Relation p = a.ProductWith(empty);
  EXPECT_EQ(p.arity(), 3u);
  EXPECT_TRUE(p.empty());
}

TEST(RelationTest, EqualityAndHash) {
  Relation a = Ints({{1}, {2}});
  Relation b = Ints({{2}, {1}});
  EXPECT_EQ(a, b);  // order-insensitive construction
  EXPECT_EQ(a.Hash(), b.Hash());
  Relation c = Ints({{1}});
  EXPECT_NE(a, c);
}

TEST(RelationTest, MixedValueTypes) {
  Relation r = Relation::FromTuples(
      2, {{Value::Int(1), Value::Str("b")}, {Value::Int(1), Value::Str("a")}});
  EXPECT_EQ(r.ToString(), "{(1, 'a'), (1, 'b')}");
}

TEST(SchemaTest, AddAndQuery) {
  Schema s;
  EXPECT_OK(s.AddRelation("R", 2));
  EXPECT_OK(s.AddRelation("S", 3));
  EXPECT_TRUE(s.HasRelation("R"));
  EXPECT_FALSE(s.HasRelation("T"));
  ASSERT_OK_AND_ASSIGN(size_t arity, s.ArityOf("S"));
  EXPECT_EQ(arity, 3u);
  EXPECT_FALSE(s.ArityOf("T").ok());
  EXPECT_EQ(s.NumRelations(), 2u);
}

TEST(SchemaTest, Rejections) {
  Schema s;
  EXPECT_OK(s.AddRelation("R", 2));
  EXPECT_EQ(s.AddRelation("R", 2).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(s.AddRelation("", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddRelation("Z", 0).code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, StartsEmptyAndSets) {
  Schema schema = testing::MakeSchema({{"R", 2}, {"S", 1}});
  Database db(schema);
  ASSERT_OK_AND_ASSIGN(Relation r, db.Get("R"));
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_OK(db.Set("R", Ints({{1, 2}})));
  ASSERT_OK_AND_ASSIGN(Relation r2, db.Get("R"));
  EXPECT_EQ(r2.size(), 1u);
}

TEST(DatabaseTest, SetRejectsBadNameOrArity) {
  Schema schema = testing::MakeSchema({{"R", 2}});
  Database db(schema);
  EXPECT_EQ(db.Set("T", Ints({{1, 2}})).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Set("R", Ints({{1}})).code(), StatusCode::kTypeError);
  EXPECT_EQ(db.Get("T").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, CopySemantics) {
  Schema schema = testing::MakeSchema({{"R", 1}});
  Database db(schema);
  EXPECT_OK(db.Set("R", Ints({{1}})));
  Database copy = db;
  EXPECT_OK(copy.Set("R", Ints({{2}})));
  // The original is untouched: database states are values.
  EXPECT_EQ(db.GetRef("R"), Ints({{1}}));
  EXPECT_EQ(copy.GetRef("R"), Ints({{2}}));
  EXPECT_NE(db, copy);
}

TEST(StatsTest, FromDatabase) {
  Schema schema = testing::MakeSchema({{"R", 1}, {"S", 2}});
  Database db(schema);
  EXPECT_OK(db.Set("R", Ints({{1}, {2}, {3}})));
  StatsCatalog stats = StatsCatalog::FromDatabase(db);
  EXPECT_EQ(stats.CardinalityOf("R", 0), 3u);
  EXPECT_EQ(stats.CardinalityOf("S", 0), 0u);
  EXPECT_EQ(stats.CardinalityOf("unknown", 77), 77u);
}

}  // namespace
}  // namespace hql
