#include "hql/reduce.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ast/builders.h"
#include "ast/metrics.h"
#include "ast/typecheck.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/ra_eval.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

TEST(ReduceTest, PureQueriesAreFixpoints) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  QueryPtr q = U(Rel("R"), Sel(Gt(Col(0), Int(3)), Rel("S")));
  ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(q, schema));
  EXPECT_EQ(red, q);  // no copy for pure queries
}

TEST(ReduceTest, SimpleWhenBecomesSubstitutionInstance) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  // (R when {ins(R, S)}) reduces to R u S.
  QueryPtr q = When(Rel("R"), Upd(Ins("R", Rel("S"))));
  ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(q, schema));
  EXPECT_TRUE(red->Equals(*U(Rel("R"), Rel("S"))));
}

TEST(ReduceTest, Example311) {
  // U = (ins(R, Q1); del(S, sigma_p(R))), Q = pi_x(S) join V:
  // Q when {U} reduces to pi_x(S - sigma_p(R u Q1)) join V.
  Schema schema = MakeSchema({{"R", 1}, {"S", 2}, {"V", 1}, {"Q1src", 1}});
  QueryPtr q1 = Rel("Q1src");
  ScalarExprPtr p = Gt(Col(0), Int(5));
  UpdatePtr u = Seq(Ins("R", q1), Del("S", X(Sel(p, Rel("R")), Rel("V"))));
  QueryPtr q = Join(Eq(Col(0), Col(1)), Proj({0}, Rel("S")), Rel("V"));
  ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(When(q, Upd(u)), schema));
  QueryPtr expected =
      Join(Eq(Col(0), Col(1)),
           Proj({0}, Diff(Rel("S"),
                          X(Sel(p, U(Rel("R"), q1)), Rel("V")))),
           Rel("V"));
  EXPECT_TRUE(red->Equals(*expected)) << red->ToString();
}

TEST(ReduceTest, NestedWhenComposes) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  // ((R when {S/R}) when {del(S, R)}): outer state moves first.
  QueryPtr q = When(When(Rel("R"), Sub1(Rel("S"), "R")),
                    Upd(Del("S", Rel("R"))));
  ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(q, schema));
  // red = sub(sub(R, {S/R}), slice(del(S,R))) = sub(S, {(S-R)/S}) = S - R.
  EXPECT_TRUE(red->Equals(*Diff(Rel("S"), Rel("R")))) << red->ToString();
}

TEST(ReduceTest, Theorem41AgreesWithDirectSemantics) {
  // The central soundness theorem: for every query and every state,
  // [Q](DB) == [red(Q)](DB), with red(Q) pure RA.
  Rng rng(23);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = true;
  options.allow_compose = true;
  options.max_depth = 4;
  int when_queries = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, options.literal_domain);
    size_t arity = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    QueryPtr q = RandomQuery(&rng, schema, arity, options);
    if (!IsPureRelAlg(q)) ++when_queries;

    ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(q, schema));
    EXPECT_TRUE(IsPureRelAlg(red));
    ASSERT_OK(InferQueryArity(red, schema).status());

    ASSERT_OK_AND_ASSIGN(Relation direct, EvalDirect(q, db));
    DatabaseResolver resolver(db);
    ASSERT_OK_AND_ASSIGN(Relation lazy, EvalRa(red, resolver));
    EXPECT_EQ(direct, lazy) << q->ToString();
  }
  // The generator must actually produce hypothetical queries.
  EXPECT_GT(when_queries, 50);
}

TEST(ReduceTest, Theorem41WithConditionalUpdates) {
  Rng rng(29);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.allow_when = true;
  options.allow_cond = true;
  options.max_depth = 3;
  for (int trial = 0; trial < 200; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, options.literal_domain);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(q, schema));
    ASSERT_OK_AND_ASSIGN(Relation direct, EvalDirect(q, db));
    DatabaseResolver resolver(db);
    ASSERT_OK_AND_ASSIGN(Relation lazy, EvalRa(red, resolver));
    EXPECT_EQ(direct, lazy) << q->ToString();
  }
}

TEST(ReduceTest, ReduceHypoMatchesStateSemantics) {
  // apply(DB, red(eta)) == [eta](DB).
  Rng rng(31);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  for (int trial = 0; trial < 200; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, options.literal_domain);
    HypoExprPtr eta = RandomHypo(&rng, schema, options);
    ASSERT_OK_AND_ASSIGN(Substitution rho, ReduceHypo(eta, schema));
    ASSERT_OK_AND_ASSIGN(Database via_subst, ApplySubstitution(rho, db));
    ASSERT_OK_AND_ASSIGN(Database via_direct, EvalState(eta, db));
    EXPECT_EQ(via_subst, via_direct) << eta->ToString();
  }
}

TEST(ReduceTest, BlowupChainReducesExponentially) {
  // Example 2.4(a): the reduction of the n-step chain has ~2^n leaves.
  for (int n = 2; n <= 10; n += 2) {
    BlowupSpec spec = BlowupChain(n);
    ASSERT_OK_AND_ASSIGN(QueryPtr red, Reduce(spec.query, spec.schema));
    EXPECT_TRUE(IsPureRelAlg(red));
    double leaves = CountRelOccurrences(red, "R" + std::to_string(n));
    EXPECT_EQ(leaves, std::pow(2.0, n));
    // The DAG stays small thanks to sharing — the blow-up is in tree size.
    EXPECT_LE(DagSize(red), 4u * static_cast<uint64_t>(n) + 4u);
  }
}

}  // namespace
}  // namespace hql
