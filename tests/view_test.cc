#include "storage/view.h"

#include "common/exec_context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "storage/relation.h"
#include "workload/generators.h"

namespace hql {
namespace {

Tuple T(int64_t a, int64_t b) { return {Value::Int(a), Value::Int(b)}; }

Relation Rel2(std::vector<std::pair<int64_t, int64_t>> rows) {
  Relation r(2);
  for (const auto& [a, b] : rows) r.Insert(T(a, b));
  return r;
}

std::vector<Tuple> Collect(const RelationView& v) {
  std::vector<Tuple> out;
  for (const Tuple& t : v) out.push_back(t);
  return out;
}

TEST(RelationViewTest, FlatWrapBehavesLikeRelation) {
  Relation r = Rel2({{1, 1}, {2, 2}, {3, 3}});
  RelationView v(r);
  EXPECT_TRUE(v.is_flat());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.delta_size(), 0u);
  EXPECT_TRUE(v.Contains(T(2, 2)));
  EXPECT_FALSE(v.Contains(T(2, 3)));
  EXPECT_EQ(v.Materialize(), r);
  EXPECT_EQ(v.Fingerprint(), r.Hash());
  EXPECT_EQ(Collect(v), r.tuples());
}

TEST(RelationViewTest, EmptyBaseOverlay) {
  RelationView empty(size_t{2});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(Collect(empty), std::vector<Tuple>());

  // Adding onto an empty base: any overlay exceeds fraction × 0, so the
  // view consolidates immediately (a free copy of nothing).
  RelationView grown = empty.ApplyDelta({T(5, 5), T(1, 1)}, {}, 100.0);
  EXPECT_EQ(grown.size(), 2u);
  EXPECT_TRUE(grown.is_flat());
  EXPECT_EQ(grown.Materialize(), Rel2({{1, 1}, {5, 5}}));
  EXPECT_EQ(Collect(grown), (std::vector<Tuple>{T(1, 1), T(5, 5)}));
}

TEST(RelationViewTest, DeleteAllLeavesEmptyContent) {
  Relation r = Rel2({{1, 1}, {2, 2}});
  RelationView v(r);
  RelationView gone = v.ApplyDelta({}, {T(1, 1), T(2, 2)}, 100.0);
  EXPECT_EQ(gone.size(), 0u);
  EXPECT_TRUE(gone.empty());
  EXPECT_FALSE(gone.Contains(T(1, 1)));
  EXPECT_EQ(gone.begin(), gone.end());
  EXPECT_EQ(gone.Materialize(), Relation(2));
  EXPECT_TRUE(gone.ContentEquals(RelationView(size_t{2})));
}

TEST(RelationViewTest, AddThenDeleteCancelsOut) {
  Relation r = Rel2({{1, 1}});
  RelationView v(r);
  RelationView added = v.ApplyDelta({T(9, 9)}, {}, 100.0);
  ASSERT_TRUE(added.Contains(T(9, 9)));
  // Deleting the previously added tuple must cancel the pending insert,
  // not record a deletion against the base (dels ⊆ base must hold).
  RelationView back = added.ApplyDelta({}, {T(9, 9)}, 100.0);
  EXPECT_TRUE(back.is_flat());
  EXPECT_EQ(back.size(), 1u);
  EXPECT_TRUE(back.ContentEquals(v));
  EXPECT_EQ(back.dels().size(), 0u);
}

TEST(RelationViewTest, DeleteThenReAddCancelsOut) {
  Relation r = Rel2({{1, 1}, {2, 2}});
  RelationView v(r);
  RelationView removed = v.ApplyDelta({}, {T(2, 2)}, 100.0);
  ASSERT_FALSE(removed.Contains(T(2, 2)));
  RelationView back = removed.ApplyDelta({T(2, 2)}, {}, 100.0);
  EXPECT_TRUE(back.is_flat());
  EXPECT_TRUE(back.ContentEquals(v));
}

TEST(RelationViewTest, AddWinsOnOverlapWithinOneDelta) {
  // (base − D) ∪ I with the same tuple in both D and I: present afterwards,
  // matching update semantics.
  Relation r = Rel2({{1, 1}});
  RelationView v(r);
  RelationView out = v.ApplyDelta({T(1, 1)}, {T(1, 1)}, 100.0);
  EXPECT_TRUE(out.Contains(T(1, 1)));
  EXPECT_EQ(out.size(), 1u);
  RelationView out2 = v.ApplyDelta({T(7, 7)}, {T(7, 7)}, 100.0);
  EXPECT_TRUE(out2.Contains(T(7, 7)));
  EXPECT_EQ(out2.size(), 2u);
}

TEST(RelationViewTest, ConsolidationThresholdBoundary) {
  // 8-row base, fraction 0.25: a composed overlay of exactly 2 stays an
  // overlay (strictly-greater test); 3 consolidates.
  Relation base(1);
  for (int64_t i = 0; i < 8; ++i) base.Insert({Value::Int(i)});
  RelationView v(base);

  RelationView at = v.ApplyDelta({{Value::Int(100)}}, {{Value::Int(0)}}, 0.25);
  EXPECT_FALSE(at.is_flat());
  EXPECT_EQ(at.delta_size(), 2u);

  RelationView over = at.ApplyDelta({{Value::Int(101)}}, {}, 0.25);
  EXPECT_TRUE(over.is_flat());
  EXPECT_EQ(over.size(), 9u);
  EXPECT_TRUE(over.Contains({Value::Int(101)}));
  EXPECT_FALSE(over.Contains({Value::Int(0)}));

  // Forcing the fraction forces the representation, content unchanged.
  RelationView forced = at.ApplyDelta({{Value::Int(101)}}, {}, 100.0);
  EXPECT_FALSE(forced.is_flat());
  EXPECT_TRUE(forced.ContentEquals(over));
  EXPECT_EQ(forced.Materialize(), over.Materialize());
}

TEST(RelationViewTest, OverlayNormalizesAgainstBase) {
  Relation r = Rel2({{1, 1}, {2, 2}});
  auto base = std::make_shared<const Relation>(r);
  // An "add" already present and a "del" not present both normalize away.
  RelationView v = RelationView::Overlay(base, {T(1, 1)}, {T(9, 9)});
  EXPECT_TRUE(v.is_flat());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.ContentEquals(RelationView(r)));
}

TEST(RelationViewTest, SharedConsolidatesOnceAndIsStable) {
  Relation r = Rel2({{1, 1}, {2, 2}, {3, 3}});
  RelationView v = RelationView(r).ApplyDelta({T(4, 4)}, {T(1, 1)}, 100.0);
  RelationPtr first = v.Shared();
  RelationPtr second = v.Shared();
  EXPECT_EQ(first.get(), second.get());  // install-once cache
  EXPECT_EQ(*first, Rel2({{2, 2}, {3, 3}, {4, 4}}));
  // Copies of the view share the cache.
  RelationView copy = v;
  EXPECT_EQ(copy.Shared().get(), first.get());
}

TEST(RelationViewTest, FingerprintDistinguishesContentChanges) {
  Relation r = Rel2({{1, 1}, {2, 2}});
  RelationView v(r);
  RelationView changed = v.ApplyDelta({T(3, 3)}, {}, 100.0);
  EXPECT_NE(v.Fingerprint(), changed.Fingerprint());
  // Same base, same overlay => same fingerprint.
  RelationView again = v.ApplyDelta({T(3, 3)}, {}, 100.0);
  EXPECT_EQ(changed.Fingerprint(), again.Fingerprint());
}

TEST(RelationViewTest, ViewSetAlgebraMatchesFlat) {
  Rng rng(77);
  Relation a = GenRelation(&rng, 40, 2, 20, 4);
  Relation b = GenRelation(&rng, 40, 2, 20, 4);
  RelationView va = RelationView(a).ApplyDelta({T(100, 100)}, {}, 100.0);
  RelationView vb = RelationView(b).ApplyDelta({T(100, 100)}, {}, 100.0);
  Relation fa = va.Materialize();
  Relation fb = vb.Materialize();
  EXPECT_EQ(ViewUnion(va, vb), fa.UnionWith(fb));
  EXPECT_EQ(ViewIntersect(va, vb), fa.IntersectWith(fb));
  EXPECT_EQ(ViewDifference(va, vb), fa.DifferenceWith(fb));
  EXPECT_EQ(ViewProduct(va, vb).size(), fa.size() * fb.size());
}

TEST(RelationViewTest, ApplyTuplesMatchesInsertErase) {
  Rng rng(5);
  Relation base = GenRelation(&rng, 50, 2, 25, 4);
  std::vector<Tuple> dels(base.tuples().begin(), base.tuples().begin() + 10);
  std::vector<Tuple> adds = {T(1000, 0), T(1001, 1), T(1002, 2)};
  Relation merged = base.ApplyTuples(adds, dels);

  Relation expected = base;
  for (const Tuple& t : dels) expected.Erase(t);
  for (const Tuple& t : adds) expected.Insert(t);
  EXPECT_EQ(merged, expected);
}

TEST(RelationViewTest, ViewStatsCountSharingAndConsolidation) {
  ExecContext ctx;
  ExecContextScope scope(&ctx);
  Relation r = Rel2({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  RelationView v(r);  // fresh wrap: not counted as sharing
  ExecStats s0 = ctx.Snapshot();
  EXPECT_EQ(s0.views_created, 0u);

  RelationView child = v.ApplyDelta({T(9, 9)}, {}, 100.0);
  ExecStats s1 = ctx.Snapshot();
  EXPECT_GE(s1.views_created, 1u);
  EXPECT_GE(s1.view_tuples_shared, r.size());
  EXPECT_EQ(s1.view_consolidations, 0u);

  (void)child.Shared();  // forces one consolidation
  ExecStats s2 = ctx.Snapshot();
  EXPECT_EQ(s2.view_consolidations, 1u);
  EXPECT_GE(s2.view_tuples_copied, child.size());
}

TEST(RelationViewTest, IteratorInterleavesAddsAndSkipsDels) {
  Relation r = Rel2({{1, 1}, {3, 3}, {5, 5}});
  RelationView v =
      RelationView(r).ApplyDelta({T(2, 2), T(6, 6)}, {T(3, 3)}, 100.0);
  EXPECT_EQ(Collect(v), (std::vector<Tuple>{T(1, 1), T(2, 2), T(5, 5),
                                            T(6, 6)}));
  EXPECT_EQ(v.Materialize().tuples(), Collect(v));
}

}  // namespace
}  // namespace hql
