#include "eval/ra_eval.h"

#include <gtest/gtest.h>

#include <vector>

#include "ast/builders.h"
#include "ast/scalar_expr.h"
#include "common/rng.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::Ints;

// Reference semantics: plain nested loop over the concatenations.
Relation NestedLoopJoin(const Relation& lhs, const Relation& rhs,
                        const ScalarExprPtr& predicate) {
  std::vector<Tuple> out;
  for (const Tuple& l : lhs) {
    for (const Tuple& r : rhs) {
      Tuple combined = ConcatTuples(l, r);
      if (predicate == nullptr || predicate->EvaluatesTrue(combined)) {
        out.push_back(std::move(combined));
      }
    }
  }
  return Relation::FromTuples(lhs.arity() + rhs.arity(), std::move(out));
}

TEST(JoinKernelTest, EquiJoinWithDuplicateKeysOnBothSides) {
  // Key 1 appears twice on each side: the hash join must emit all four
  // combinations, exactly like the nested loop.
  Relation lhs = Ints({{1, 10}, {1, 11}, {2, 20}});
  Relation rhs = Ints({{1, 100}, {1, 101}, {3, 300}});
  ScalarExprPtr pred = Eq(Col(0), Col(2));
  EXPECT_EQ(JoinRelations(lhs, rhs, pred), NestedLoopJoin(lhs, rhs, pred));
  EXPECT_EQ(JoinRelations(lhs, rhs, pred).size(), 4u);
}

TEST(JoinKernelTest, BuildSideSelectionPreservesOutputOrder) {
  // Whichever side is smaller becomes the build side; the output must be
  // (lhs, rhs) concatenations either way.
  Relation small = Ints({{1, 10}});
  Relation large = Ints({{1, 100}, {1, 101}, {2, 200}, {3, 300}});
  ScalarExprPtr pred = Eq(Col(0), Col(2));
  // small on the left: build side is the left input.
  EXPECT_EQ(JoinRelations(small, large, pred),
            NestedLoopJoin(small, large, pred));
  // small on the right: build side is the right input.
  EXPECT_EQ(JoinRelations(large, small, pred),
            NestedLoopJoin(large, small, pred));
}

TEST(JoinKernelTest, ResidualOnlyPredicateFallsBackToNestedLoop) {
  // No equi conjunct at all (a pure inequality): the kernel must still be
  // correct via the nested-loop path.
  Relation lhs = Ints({{1, 10}, {5, 50}});
  Relation rhs = Ints({{2, 20}, {4, 40}});
  ScalarExprPtr pred = Lt(Col(0), Col(2));
  EXPECT_EQ(JoinRelations(lhs, rhs, pred), NestedLoopJoin(lhs, rhs, pred));
}

TEST(JoinKernelTest, MixedEquiAndResidualConjuncts) {
  // $0 = $2 is hashable; $1 < $3 stays residual and must be applied to
  // every hash match.
  Relation lhs = Ints({{1, 10}, {1, 99}, {2, 20}});
  Relation rhs = Ints({{1, 50}, {2, 5}});
  ScalarExprPtr pred = And(Eq(Col(0), Col(2)), Lt(Col(1), Col(3)));
  Relation got = JoinRelations(lhs, rhs, pred);
  EXPECT_EQ(got, NestedLoopJoin(lhs, rhs, pred));
  EXPECT_EQ(got, Ints({{1, 10, 1, 50}}));
}

TEST(JoinKernelTest, ReversedEquiColumnOrder) {
  // $2 = $0 (right column named first) must hash exactly like $0 = $2.
  Relation lhs = Ints({{1, 10}, {2, 20}});
  Relation rhs = Ints({{1, 100}, {2, 200}});
  EXPECT_EQ(JoinRelations(lhs, rhs, Eq(Col(2), Col(0))),
            JoinRelations(lhs, rhs, Eq(Col(0), Col(2))));
}

TEST(JoinKernelTest, EmptyInputs) {
  Relation empty(2);
  Relation some = Ints({{1, 10}});
  ScalarExprPtr pred = Eq(Col(0), Col(2));
  EXPECT_EQ(JoinRelations(empty, some, pred).size(), 0u);
  EXPECT_EQ(JoinRelations(some, empty, pred).size(), 0u);
  EXPECT_EQ(JoinRelations(empty, empty, pred).size(), 0u);
}

TEST(JoinKernelTest, NullPredicateIsCrossProduct) {
  Relation lhs = Ints({{1, 10}, {2, 20}});
  Relation rhs = Ints({{3, 30}});
  EXPECT_EQ(JoinRelations(lhs, rhs, nullptr),
            NestedLoopJoin(lhs, rhs, nullptr));
  EXPECT_EQ(JoinRelations(lhs, rhs, nullptr).size(), 2u);
}

TEST(JoinKernelTest, MultiColumnEquiKeys) {
  // Two equi conjuncts: the composite key (both columns) must match.
  Relation lhs = Ints({{1, 7}, {1, 8}, {2, 7}});
  Relation rhs = Ints({{1, 7}, {2, 8}});
  ScalarExprPtr pred = And(Eq(Col(0), Col(2)), Eq(Col(1), Col(3)));
  Relation got = JoinRelations(lhs, rhs, pred);
  EXPECT_EQ(got, NestedLoopJoin(lhs, rhs, pred));
  EXPECT_EQ(got, Ints({{1, 7, 1, 7}}));
}

TEST(JoinKernelTest, RandomizedAgreementWithNestedLoop) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    Relation lhs = GenRelation(&rng, 40, 2, 10);
    Relation rhs = GenRelation(&rng, 25, 2, 10);
    ScalarExprPtr pred = Eq(Col(0), Col(2));
    EXPECT_EQ(JoinRelations(lhs, rhs, pred), NestedLoopJoin(lhs, rhs, pred))
        << "round " << round;
  }
}

}  // namespace
}  // namespace hql
