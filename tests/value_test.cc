#include "storage/value.h"

#include "storage/tuple.h"

#include <gtest/gtest.h>

#include <vector>

namespace hql {
namespace {

TEST(ValueTest, TypeAccessors) {
  EXPECT_TRUE(Value::Nul().is_null());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Double(3.5).is_double());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_TRUE(Value::Int(3).is_number());
  EXPECT_TRUE(Value::Double(3.5).is_number());
  EXPECT_FALSE(Value::Str("x").is_number());
}

TEST(ValueTest, AccessorValues) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.25).AsDouble(), 2.25);
  EXPECT_DOUBLE_EQ(Value::Int(4).AsDouble(), 4.0);  // widening accessor
  EXPECT_EQ(Value::Str("ab").AsString(), "ab");
}

TEST(ValueTest, FamilyOrdering) {
  // null < bool < number < string.
  std::vector<Value> ordered = {Value::Nul(), Value::Bool(false),
                                Value::Bool(true), Value::Int(-100),
                                Value::Int(5), Value::Str("")};
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    EXPECT_LT(ordered[i].Compare(ordered[i + 1]), 0)
        << ordered[i].ToString() << " vs " << ordered[i + 1].ToString();
  }
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.5).Compare(Value::Int(4)), 0);
  // Numerically equal but different types: int sorts before double so the
  // order stays antisymmetric; equality is strict.
  EXPECT_LT(Value::Int(4).Compare(Value::Double(4.0)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int(4)), 0);
}

TEST(ValueTest, ComparisonOperators) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Int(2) <= Value::Int(2));
  EXPECT_TRUE(Value::Int(3) > Value::Int(2));
  EXPECT_TRUE(Value::Int(3) >= Value::Int(3));
  EXPECT_TRUE(Value::Str("a") != Value::Str("b"));
  EXPECT_TRUE(Value::Str("a") == Value::Str("a"));
  EXPECT_TRUE(Value::Nul() == Value::Nul());
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_LT(Value::Str("ab").Compare(Value::Str("abc")), 0);
  EXPECT_EQ(Value::Str("abc").Compare(Value::Str("abc")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Str("xyz").Hash(), Value::Str("xyz").Hash());
  // Different types with "same" content should hash differently.
  EXPECT_NE(Value::Int(1).Hash(), Value::Bool(true).Hash());
  EXPECT_NE(Value::Int(0).Hash(), Value::Nul().Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Nul().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");  // kept double-looking
  EXPECT_EQ(Value::Str("it's").ToString(), "'it''s'");
}

TEST(TupleTest, LexicographicCompare) {
  Tuple a = {Value::Int(1), Value::Int(2)};
  Tuple b = {Value::Int(1), Value::Int(3)};
  Tuple c = {Value::Int(1)};
  EXPECT_LT(CompareTuples(a, b), 0);
  EXPECT_GT(CompareTuples(b, a), 0);
  EXPECT_EQ(CompareTuples(a, a), 0);
  EXPECT_LT(CompareTuples(c, a), 0);  // shorter first
}

TEST(TupleTest, ConcatAndPrint) {
  Tuple a = {Value::Int(1)};
  Tuple b = {Value::Str("x"), Value::Int(2)};
  Tuple c = ConcatTuples(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(TupleToString(c), "(1, 'x', 2)");
}

TEST(TupleTest, HashDistinguishesOrder) {
  Tuple a = {Value::Int(1), Value::Int(2)};
  Tuple b = {Value::Int(2), Value::Int(1)};
  EXPECT_NE(HashTuple(a), HashTuple(b));
  EXPECT_EQ(HashTuple(a), HashTuple(a));
}

}  // namespace
}  // namespace hql
