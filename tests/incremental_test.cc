// Incremental re-evaluation (eval/incremental.h): delta-of-delta extraction
// between canonical overlays, and the end-to-end property that patching a
// cached result under a chain of random scenario edits is bit-identical to
// evaluating from scratch — for every strategy, including edits that cross
// the overlay consolidation boundary (where the shared base is replaced and
// the route must fall back to a full re-evaluation).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/builders.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/incremental.h"
#include "eval/memo.h"
#include "opt/planner.h"
#include "storage/view.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using hql::testing::IntRow;
using hql::testing::Ints;

constexpr Strategy kAllStrategies[] = {
    Strategy::kDirect,  Strategy::kLazy,    Strategy::kFilter1,
    Strategy::kFilter2, Strategy::kFilter3, Strategy::kHybrid,
};

// ---------------------------------------------------------------------------
// OverlayEditBetween: the delta-of-delta primitive.
// ---------------------------------------------------------------------------

TEST(OverlayEditBetweenTest, SharedBaseYieldsCanonicalEdit) {
  // Big enough that small overlays stay under the consolidation fraction —
  // consolidation would (correctly) sever base sharing.
  std::vector<Tuple> rows;
  for (int64_t i = 1; i <= 40; ++i) rows.push_back(IntRow({i, i}));
  RelationView base(Relation::FromTuples(2, std::move(rows)));
  RelationView from = base.ApplyDelta({IntRow({90, 90})}, {IntRow({1, 1})});
  RelationView to =
      base.ApplyDelta({IntRow({90, 90}), IntRow({80, 80})}, {IntRow({2, 2})});

  std::optional<RelationEdit> edit = OverlayEditBetween(from, to);
  ASSERT_TRUE(edit.has_value());
  // Relative to `from`'s content: {1,1} comes back, {80,80} is new, {2,2}
  // goes away.
  EXPECT_EQ(edit->adds,
            (std::vector<Tuple>{IntRow({1, 1}), IntRow({80, 80})}));
  EXPECT_EQ(edit->dels, (std::vector<Tuple>{IntRow({2, 2})}));
  // Canonical: applying the edit to `from` reproduces `to`'s content.
  EXPECT_EQ(from.ApplyDelta(edit->adds, edit->dels).Materialize(),
            to.Materialize());
}

TEST(OverlayEditBetweenTest, IdenticalViewsYieldEmptyEdit) {
  RelationView base(Ints({{1, 1}, {2, 2}}));
  RelationView v = base.ApplyDelta({IntRow({5, 5})}, {});
  std::optional<RelationEdit> edit = OverlayEditBetween(v, v);
  ASSERT_TRUE(edit.has_value());
  EXPECT_TRUE(edit->empty());
}

TEST(OverlayEditBetweenTest, DifferentBasesAreNotComparable) {
  RelationView a(Ints({{1, 1}, {2, 2}}));
  RelationView b(Ints({{1, 1}, {2, 2}}));  // equal content, distinct base
  EXPECT_FALSE(OverlayEditBetween(a, b).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end property: random edit chains.
// ---------------------------------------------------------------------------

Database PropertyDb(uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  HQL_CHECK(schema.AddRelation("R", 2).ok());
  HQL_CHECK(schema.AddRelation("S", 2).ok());
  Database db(schema);
  HQL_CHECK(db.Set("R", GenRelation(&rng, 300, 2, 120)).ok());
  HQL_CHECK(db.Set("S", GenRelation(&rng, 300, 2, 120)).ok());
  return db;
}

// A hypothetical query exercising every operator the delta propagator
// implements: select, project, join, union, difference, intersection.
QueryPtr PropertyQuery() {
  QueryPtr join = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  QueryPtr left = Proj({0, 3}, Sel(Ge(Col(1), Int(10)), join));
  QueryPtr right = N(Rel("R"), Diff(Rel("R"), Sel(Lt(Col(0), Int(30)),
                                                  Rel("R"))));
  HypoExprPtr state =
      Upd(Seq(Del("S", Sel(Lt(Col(1), Int(15)), Rel("S"))),
              Ins("S", Proj({0, 1}, Rel("R")))));
  return When(U(left, right), state);
}

// One random small scenario edit; every ~6th step is a bulk delete large
// enough to push the overlay past the consolidation fraction, so the chain
// repeatedly crosses the base-replacement boundary.
Result<Database> RandomEdit(Rng* rng, const Database& db, int step) {
  const char* rel = (rng->Next() % 2 == 0) ? "R" : "S";
  if (step % 6 == 5) {
    int64_t cut = 30 + static_cast<int64_t>(rng->Next() % 60);
    return ExecUpdate(Del(rel, Sel(Lt(Col(0), Int(cut)), Rel(rel))), db);
  }
  switch (rng->Next() % 3) {
    case 0: {
      int64_t a = static_cast<int64_t>(rng->Next() % 120);
      int64_t b = static_cast<int64_t>(rng->Next() % 120);
      return ExecUpdate(Ins(rel, Single(IntRow({a, b}))), db);
    }
    case 1: {
      int64_t v = static_cast<int64_t>(rng->Next() % 120);
      return ExecUpdate(Del(rel, Sel(Eq(Col(0), Int(v)), Rel(rel))), db);
    }
    default: {
      int64_t a = static_cast<int64_t>(rng->Next() % 120);
      int64_t b = static_cast<int64_t>(rng->Next() % 120);
      return ExecUpdate(
          Seq(Ins(rel, Single(IntRow({a, b}))), Ins(rel, Single(IntRow({b, a})))),
          db);
    }
  }
}

TEST(IncrementalPropertyTest, EditChainPatchesBitIdenticallyAllStrategies) {
  Rng rng(20260808);
  Database db = PropertyDb(77);
  QueryPtr query = PropertyQuery();

  // One persistent incremental cache per strategy, shared across the whole
  // chain — exactly the re-asked-query-family usage pattern.
  std::vector<std::unique_ptr<IncrementalCache>> caches;
  for (size_t i = 0; i < std::size(kAllStrategies); ++i) {
    caches.push_back(std::make_unique<IncrementalCache>());
  }

  ExecContext ctx;
  ExecContextScope scope(&ctx);

  constexpr int kSteps = 24;
  for (int step = 0; step < kSteps; ++step) {
    ASSERT_OK_AND_ASSIGN(db, RandomEdit(&rng, db, step));

    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(query, db));
    for (size_t si = 0; si < std::size(kAllStrategies); ++si) {
      Strategy strategy = kAllStrategies[si];
      PlannerOptions options;
      options.incremental_mode = IncrementalMode::kAuto;
      options.incremental_cache = caches[si].get();
      ASSERT_OK_AND_ASSIGN(Relation got,
                           Execute(query, db, db.schema(), strategy, options));
      EXPECT_EQ(got, reference)
          << "step " << step << " strategy " << StrategyName(strategy);
    }
  }

  // The chain must actually have exercised the patch route (and, via the
  // bulk deletes, the consolidation fallback) — otherwise this test proves
  // nothing about incremental execution.
  ExecStats stats = ctx.Snapshot();
  EXPECT_GT(stats.incremental_results_patched, 0u);
  EXPECT_GT(stats.incremental_edits_propagated, 0u);
  EXPECT_GT(stats.incremental_fallbacks, 0u);
}

// Deterministic single-edit patch: a warm cache plus a one-tuple insert
// must take the patch route on the lazy strategy and report it in the
// ExecStats counters.
TEST(IncrementalPropertyTest, SingleTupleEditPatchesOnLazy) {
  Database db = PropertyDb(42);
  QueryPtr query = PropertyQuery();
  IncrementalCache cache;

  PlannerOptions options;
  options.incremental_mode = IncrementalMode::kAuto;
  options.incremental_cache = &cache;

  // Cold: records the execution.
  ASSERT_OK(Execute(query, db, db.schema(), Strategy::kLazy, options)
                .status());
  ASSERT_OK_AND_ASSIGN(
      db, ExecUpdate(Ins("R", Single(IntRow({3, 99}))), db));

  ExecContext ctx;
  ExecContextScope scope(&ctx);
  ASSERT_OK_AND_ASSIGN(Relation got, Execute(query, db, db.schema(),
                                             Strategy::kLazy, options));
  ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(query, db));
  EXPECT_EQ(got, reference);

  ExecStats stats = ctx.Snapshot();
  EXPECT_EQ(stats.incremental_results_patched, 1u);
  EXPECT_GT(stats.incremental_edits_propagated, 0u);
  EXPECT_EQ(stats.incremental_fallbacks, 0u);
}

// A consolidated copy severs base sharing: the warm entry is found but not
// patchable, the execution falls back to a full re-evaluation (counted),
// and the result is still bit-identical.
TEST(IncrementalPropertyTest, ConsolidationFallsBackCleanly) {
  Database db = PropertyDb(43);
  QueryPtr query = PropertyQuery();
  IncrementalCache cache;

  PlannerOptions options;
  options.incremental_mode = IncrementalMode::kAuto;
  options.incremental_cache = &cache;

  ASSERT_OK(Execute(query, db, db.schema(), Strategy::kLazy, options)
                .status());

  Database severed = db.Consolidated();
  ASSERT_OK_AND_ASSIGN(
      severed, ExecUpdate(Ins("R", Single(IntRow({3, 99}))), severed));

  ExecContext ctx;
  ExecContextScope scope(&ctx);
  ASSERT_OK_AND_ASSIGN(
      Relation got,
      Execute(query, severed, severed.schema(), Strategy::kLazy, options));
  ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(query, severed));
  EXPECT_EQ(got, reference);

  ExecStats stats = ctx.Snapshot();
  EXPECT_EQ(stats.incremental_results_patched, 0u);
  EXPECT_EQ(stats.incremental_fallbacks, 1u);
}

// incremental_mode off (the default) must not touch the cache at all.
TEST(IncrementalPropertyTest, OffModeRecordsNothing) {
  Database db = PropertyDb(44);
  QueryPtr query = PropertyQuery();
  IncrementalCache cache;

  PlannerOptions options;
  options.incremental_cache = &cache;  // mode stays kOff
  ASSERT_OK(Execute(query, db, db.schema(), Strategy::kLazy, options)
                .status());
  EXPECT_EQ(cache.entries(), 0u);
}

// ---------------------------------------------------------------------------
// Delta-route product rewrite (hybrid-delta gap regression).
// ---------------------------------------------------------------------------
// Aggregate patching (sum/count group-wise; min/max recompute-only).
// ---------------------------------------------------------------------------

// A one-tuple edit against a warm sum-aggregate entry patches group-wise:
// only the touched group's row changes, the counters report a patch, and
// the result is bit-identical to a from-scratch direct evaluation.
TEST(IncrementalAggregateTest, SumAndCountPatchGroupWise) {
  for (AggFunc func : {AggFunc::kSum, AggFunc::kCount}) {
    Database db = PropertyDb(46);
    QueryPtr query =
        Agg({0}, func, 1, Sel(Ge(Col(1), Int(5)), Rel("R")));
    IncrementalCache cache;

    PlannerOptions options;
    options.incremental_mode = IncrementalMode::kAuto;
    options.incremental_cache = &cache;

    ASSERT_OK(Execute(query, db, db.schema(), Strategy::kLazy, options)
                  .status());
    // One insert into group 3 and one targeted delete: both land in the
    // affected-key re-accumulation.
    ASSERT_OK_AND_ASSIGN(
        db, ExecUpdate(Seq(Ins("R", Single(IntRow({3, 99}))),
                           Del("R", Sel(Eq(Col(0), Int(7)), Rel("R")))),
                       db));

    ExecContext ctx;
    ExecContextScope scope(&ctx);
    ASSERT_OK_AND_ASSIGN(Relation got, Execute(query, db, db.schema(),
                                               Strategy::kLazy, options));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(query, db));
    EXPECT_EQ(got, reference) << AggFuncName(func);

    ExecStats stats = ctx.Snapshot();
    EXPECT_EQ(stats.incremental_results_patched, 1u) << AggFuncName(func);
    EXPECT_GT(stats.incremental_edits_propagated, 0u) << AggFuncName(func);
    EXPECT_EQ(stats.incremental_fallbacks, 0u) << AggFuncName(func);
  }
}

// Min/max stay recompute-only: a deletion can remove the group's extremum,
// and the recording keeps no per-group evidence of the runner-up. The warm
// entry must fall back (counted) and still answer bit-identically.
TEST(IncrementalAggregateTest, MinMaxFallBackToRecompute) {
  for (AggFunc func : {AggFunc::kMin, AggFunc::kMax}) {
    Database db = PropertyDb(47);
    QueryPtr query = Agg({0}, func, 1, Rel("R"));
    IncrementalCache cache;

    PlannerOptions options;
    options.incremental_mode = IncrementalMode::kAuto;
    options.incremental_cache = &cache;

    ASSERT_OK(Execute(query, db, db.schema(), Strategy::kLazy, options)
                  .status());
    ASSERT_OK_AND_ASSIGN(
        db, ExecUpdate(Del("R", Sel(Eq(Col(0), Int(7)), Rel("R"))), db));

    ExecContext ctx;
    ExecContextScope scope(&ctx);
    ASSERT_OK_AND_ASSIGN(Relation got, Execute(query, db, db.schema(),
                                               Strategy::kLazy, options));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(query, db));
    EXPECT_EQ(got, reference) << AggFuncName(func);

    ExecStats stats = ctx.Snapshot();
    EXPECT_EQ(stats.incremental_results_patched, 0u) << AggFuncName(func);
    EXPECT_EQ(stats.incremental_fallbacks, 1u) << AggFuncName(func);
  }
}

// Random edit chain against a sum-aggregate-over-join plan: the group-wise
// patch rule must stay bit-identical to direct evaluation across inserts,
// deletes and consolidation boundaries on every strategy.
TEST(IncrementalAggregateTest, EditChainPatchesAggregates) {
  Rng rng(20260809);
  Database db = PropertyDb(48);
  QueryPtr query = Agg(
      {0}, AggFunc::kSum, 3,
      Sel(Ge(Col(1), Int(10)), Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"))));

  std::vector<std::unique_ptr<IncrementalCache>> caches;
  for (size_t i = 0; i < std::size(kAllStrategies); ++i) {
    caches.push_back(std::make_unique<IncrementalCache>());
  }

  ExecContext ctx;
  ExecContextScope scope(&ctx);
  constexpr int kSteps = 12;
  for (int step = 0; step < kSteps; ++step) {
    ASSERT_OK_AND_ASSIGN(db, RandomEdit(&rng, db, step));
    ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(query, db));
    for (size_t si = 0; si < std::size(kAllStrategies); ++si) {
      Strategy strategy = kAllStrategies[si];
      PlannerOptions options;
      options.incremental_mode = IncrementalMode::kAuto;
      options.incremental_cache = caches[si].get();
      ASSERT_OK_AND_ASSIGN(Relation got,
                           Execute(query, db, db.schema(), strategy, options));
      EXPECT_EQ(got, reference)
          << "step " << step << " strategy " << StrategyName(strategy);
    }
  }
  EXPECT_GT(ctx.Snapshot().incremental_results_patched, 0u);
}

// ---------------------------------------------------------------------------

// sigma[$0 = $2](R x S) when {...} on the delta route must run as a join:
// the block preparation in RunFilter3 now simplifies pure regions before
// collapsing, so the join-when kernel fires and no operator ever sees the
// cross product's |R| x |S| rows.
TEST(Filter3SimplifyTest, DeltaRouteRunsProductPredicateAsJoin) {
  Database db = PropertyDb(45);
  QueryPtr query =
      When(Sel(Eq(Col(0), Col(2)), X(Rel("R"), Rel("S"))),
           Upd(Del("R", Sel(Lt(Col(0), Int(20)), Rel("R")))));

  ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(query, db));

  ExecContext ctx;
  ctx.set_tracing(true);
  ExecContextScope scope(&ctx);
  ASSERT_OK_AND_ASSIGN(
      Relation got,
      Execute(query, db, db.schema(), Strategy::kFilter3, PlannerOptions()));
  EXPECT_EQ(got, reference);

  ExecStats stats = ctx.Snapshot();
  const uint64_t product_rows =
      static_cast<uint64_t>(db.GetRef("R").size()) *
      static_cast<uint64_t>(db.GetRef("S").size());
  bool join_when_fired = false;
  for (const OperatorSpan& span : stats.spans) {
    if (span.op == "join-when") join_when_fired = true;
    EXPECT_LT(span.rows_in, product_rows)
        << span.op << " saw the materialized cross product";
  }
  EXPECT_TRUE(join_when_fired)
      << "select-over-product was not clustered into a join on the delta "
         "route";
}

}  // namespace
}  // namespace hql
