#include "parser/parser.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/hypo.h"
#include "ast/query.h"
#include "ast/update.h"
#include "common/rng.h"
#include "parser/lexer.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT

TEST(LexerTest, TokenKinds) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                       Tokenize("sigma[$0 >= 3.5]('a''b') != R_1"));
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kSigma);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[2].kind, TokenKind::kColumn);
  EXPECT_EQ(tokens[2].int_value, 0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 3.5);
  EXPECT_EQ(tokens[6].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[7].kind, TokenKind::kString);
  EXPECT_EQ(tokens[7].text, "a'b");
  EXPECT_EQ(tokens[9].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[10].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[10].text, "R_1");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("$x").ok());
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

TEST(ParserTest, BasicQueries) {
  ASSERT_OK_AND_ASSIGN(QueryPtr q, ParseQuery("R"));
  EXPECT_TRUE(q->Equals(*Rel("R")));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("sigma[$0 > 30](S)"));
  EXPECT_TRUE(q->Equals(*Sel(Gt(Col(0), Int(30)), Rel("S"))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("pi[0,2](T)"));
  EXPECT_TRUE(q->Equals(*Proj({0, 2}, Rel("T"))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("empty[3]"));
  EXPECT_TRUE(q->Equals(*Empty(3)));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("{(1, 'a', 2.5, true, null)}"));
  EXPECT_TRUE(q->Equals(*Single({Value::Int(1), Value::Str("a"),
                                 Value::Double(2.5), Value::Bool(true),
                                 Value::Nul()})));
}

TEST(ParserTest, BinaryOperatorPrecedence) {
  // x binds tighter than isect, which binds tighter than union / minus.
  ASSERT_OK_AND_ASSIGN(QueryPtr q, ParseQuery("A union B isect C x D"));
  EXPECT_TRUE(q->Equals(*U(Rel("A"), N(Rel("B"), X(Rel("C"), Rel("D"))))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("A - B union C"));
  // Left-associative at the same level.
  EXPECT_TRUE(q->Equals(*U(Diff(Rel("A"), Rel("B")), Rel("C"))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("R join[$0 = $2] S"));
  EXPECT_TRUE(q->Equals(*Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"))));
}

TEST(ParserTest, WhenStates) {
  ASSERT_OK_AND_ASSIGN(QueryPtr q, ParseQuery("R when {ins(R, S)}"));
  EXPECT_TRUE(q->Equals(*When(Rel("R"), Upd(Ins("R", Rel("S"))))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("R when {ins(R, S); del(S, R)}"));
  EXPECT_TRUE(q->Equals(
      *When(Rel("R"), Upd(Seq(Ins("R", Rel("S")), Del("S", Rel("R")))))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("R when {S/R, R/S}"));
  EXPECT_TRUE(q->Equals(*When(
      Rel("R"), Sub({Binding{"R", Rel("S")}, Binding{"S", Rel("R")}}))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("R when {}"));
  EXPECT_TRUE(q->Equals(*When(Rel("R"), Sub({}))));

  ASSERT_OK_AND_ASSIGN(q, ParseQuery("R when ({S/R} # {ins(S, R)})"));
  EXPECT_TRUE(q->Equals(*When(
      Rel("R"), Comp(Sub1(Rel("S"), "R"), Upd(Ins("S", Rel("R")))))));
}

TEST(ParserTest, NestedWhenLeftAssociative) {
  ASSERT_OK_AND_ASSIGN(QueryPtr q, ParseQuery("R when {S/R} when {R/S}"));
  EXPECT_TRUE(q->Equals(*When(When(Rel("R"), Sub1(Rel("S"), "R")),
                              Sub1(Rel("R"), "S"))));
}

TEST(ParserTest, ConditionalUpdate) {
  ASSERT_OK_AND_ASSIGN(
      UpdatePtr u,
      ParseUpdate("if sigma[$0 > 5](C) then {ins(R, S)} else {del(R, S)}"));
  EXPECT_TRUE(u->Equals(*If(Sel(Gt(Col(0), Int(5)), Rel("C")),
                            Ins("R", Rel("S")), Del("R", Rel("S")))));
}

TEST(ParserTest, ScalarExpressions) {
  ASSERT_OK_AND_ASSIGN(ScalarExprPtr e,
                       ParseScalarExpr("$0 + 2 * $1 >= 10 and not $2 = 3"));
  EXPECT_TRUE(e->Equals(*And(Ge(Add(Col(0), Mul(Int(2), Col(1))), Int(10)),
                             Not(Eq(Col(2), Int(3))))));

  ASSERT_OK_AND_ASSIGN(e, ParseScalarExpr("-$0 < -3"));
  EXPECT_TRUE(e->Equals(*Lt(ScalarExpr::Unary(ScalarOp::kNeg, Col(0)),
                            ScalarExpr::Unary(ScalarOp::kNeg, Int(3)))));

  // or is looser than and.
  ASSERT_OK_AND_ASSIGN(e, ParseScalarExpr("$0 = 1 or $0 = 2 and $1 = 3"));
  EXPECT_TRUE(e->Equals(
      *Or(Eq(Col(0), Int(1)), And(Eq(Col(0), Int(2)), Eq(Col(1), Int(3))))));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("R union").ok());
  EXPECT_FALSE(ParseQuery("sigma[$0 >](R)").ok());
  EXPECT_FALSE(ParseQuery("R when").ok());
  EXPECT_FALSE(ParseQuery("R when {S/R, T/R}").ok());  // duplicate binding
  EXPECT_FALSE(ParseQuery("pi[](R)").ok());
  EXPECT_FALSE(ParseQuery("empty[0]").ok());
  EXPECT_FALSE(ParseQuery("R S").ok());  // trailing input
  EXPECT_FALSE(ParseUpdate("ins(R)").ok());
  EXPECT_FALSE(ParseHypo("{ins(R, S)").ok());
}

TEST(ParserTest, RoundTripHandcrafted) {
  const char* cases[] = {
      "R",
      "empty[2]",
      "{(1, 'a')}",
      "sigma[($0 > 30)](R join[($0 = $2)] S)",
      "(R union S) - (R isect S)",
      "pi[0,1](R x S)",
      "(R when {ins(R, sigma[($0 >= 60)](S))})",
      "((R - S) when {del(S, R); ins(R, S)})",
      "(R when ({S/R} # {del(S, R)}))",
      "(R when {if T then {ins(R, S)} else {del(R, S)}})",
  };
  for (const char* text : cases) {
    ASSERT_OK_AND_ASSIGN(QueryPtr q, ParseQuery(text));
    ASSERT_OK_AND_ASSIGN(QueryPtr again, ParseQuery(q->ToString()));
    EXPECT_TRUE(q->Equals(*again)) << text << " -> " << q->ToString();
  }
}

TEST(ParserTest, RoundTripRandomized) {
  // Printer output always parses back to an equal AST.
  Rng rng(171);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 4;
  options.allow_cond = true;
  for (int trial = 0; trial < 300; ++trial) {
    size_t arity = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    QueryPtr q = RandomQuery(&rng, schema, arity, options);
    std::string text = q->ToString();
    ASSERT_OK_AND_ASSIGN(QueryPtr parsed, ParseQuery(text));
    EXPECT_TRUE(parsed->Equals(*q)) << text;
  }
}

TEST(ParserTest, RoundTripRandomHypo) {
  Rng rng(173);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  for (int trial = 0; trial < 200; ++trial) {
    HypoExprPtr h = RandomHypo(&rng, schema, options);
    std::string text = h->ToString();
    ASSERT_OK_AND_ASSIGN(HypoExprPtr parsed, ParseHypo(text));
    EXPECT_TRUE(parsed->Equals(*h)) << text;
  }
}

}  // namespace
}  // namespace hql
