#include "opt/explain.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/builders.h"
#include "common/check.h"
#include "common/rng.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

TEST(ExplainTest, ReportsShapeAndForms) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  StatsCatalog stats;
  stats.SetCardinality("R", 1000, 2);
  stats.SetCardinality("S", 1000, 2);

  QueryPtr q = When(Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")),
                    Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S")))));
  ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(q, schema, stats));

  EXPECT_EQ(report.arity, 4u);
  EXPECT_EQ(report.when_depth, 1u);
  EXPECT_GT(report.tree_size, 0.0);
  EXPECT_TRUE(report.has_mod_enf);
  EXPECT_FALSE(report.lazy_is_empty);
  EXPECT_GT(report.estimated_cardinality, 0.0);
  EXPECT_GT(report.state_materialization, 0.0);

  // The textual forms parse back.
  EXPECT_OK(ParseQuery(report.enf).status());
  EXPECT_OK(ParseQuery(report.lazy).status());
  EXPECT_OK(ParseQuery(report.plan).status());

  std::string text = FormatExplain(report);
  EXPECT_NE(text.find("enf:"), std::string::npos);
  EXPECT_NE(text.find("decisions:"), std::string::npos);
}

TEST(ExplainTest, DetectsStaticEmptiness) {
  // The Example 2.1(b) query is proved empty in the report.
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  StatsCatalog stats = StatsCatalog();
  QueryPtr rjoins = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  QueryPtr query1 = When(
      Diff(When(rjoins, Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S"))))),
           When(rjoins, Upd(Ins("R", Sel(Gt(Col(0), Int(30)), Rel("S")))))),
      Upd(Del("S", Sel(Lt(Col(0), Int(60)), Rel("S")))));
  ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(query1, schema, stats));
  EXPECT_TRUE(report.lazy_is_empty);
  EXPECT_DOUBLE_EQ(report.lazy_cost, 0.0);
}

TEST(ExplainTest, FlagsPreciseDeltaFallback) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  StatsCatalog stats;
  // An explicit substitution has no mod-ENF form.
  QueryPtr q = When(Rel("R"), Sub1(U(Rel("R"), Rel("S")), "R"));
  ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(q, schema, stats));
  EXPECT_FALSE(report.has_mod_enf);
  EXPECT_NE(FormatExplain(report).find("precise deltas"),
            std::string::npos);
}

TEST(ExplainTest, NeverFailsOnRandomQueries) {
  Rng rng(1031);
  Schema schema = PropertySchema();
  StatsCatalog stats;
  for (const auto& [name, arity] : schema.arities()) {
    stats.SetCardinality(name, 500, arity);
  }
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;
  for (int trial = 0; trial < 150; ++trial) {
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(q, schema, stats));
    EXPECT_FALSE(FormatExplain(report).empty());
    EXPECT_OK(ParseQuery(report.lazy).status()) << report.lazy;
  }
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE.

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  Schema schema_ = MakeSchema({{"R", 2}, {"S", 2}});

  Database MakeDb() {
    Database db(schema_);
    HQL_CHECK(db.Set("R", testing::Ints({{1, 10}, {2, 20}})).ok());
    HQL_CHECK(
        db.Set("S", testing::Ints({{30, 1}, {35, 2}, {2, 3}})).ok());
    return db;
  }
};

TEST_F(ExplainAnalyzeTest, ActualsMatchExecutionOnExample21) {
  // Example 2.1's query shape: (R join S) when {ins(R, sigma[A>=30](S))}.
  Database db = MakeDb();
  QueryPtr q = When(Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")),
                    Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S")))));

  ASSERT_OK_AND_ASSIGN(AnalyzeReport report,
                       ExplainAnalyze(q, db, schema_, AnalyzeOptions()));
  ASSERT_OK_AND_ASSIGN(Relation expected,
                       Execute(q, db, schema_, Strategy::kDirect));
  ASSERT_FALSE(expected.empty());  // the workload is non-trivial
  EXPECT_EQ(report.actual_rows, expected.size());
  EXPECT_GT(report.plan.estimated_cardinality, 0.0);
  EXPECT_FALSE(report.exec.route.empty());

  // Tracing defaults on: the run produced spans, and the final operator's
  // actual output cardinality is the returned relation's size.
  ASSERT_FALSE(report.exec.spans.empty());
  EXPECT_TRUE(std::any_of(
      report.exec.spans.begin(), report.exec.spans.end(),
      [&](const OperatorSpan& s) { return s.rows_out == expected.size(); }));
  for (const OperatorSpan& span : report.exec.spans) {
    EXPECT_FALSE(span.op.empty());
    EXPECT_EQ(span.route, report.exec.route);
  }

  std::string text = FormatExplainAnalyze(report);
  EXPECT_NE(text.find("estimated:"), std::string::npos);
  EXPECT_NE(text.find("actual:"), std::string::npos);
  EXPECT_NE(text.find("spans:"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, ActualsMatchOnExample22ComposedUpdates) {
  // Example 2.2's composed-state shape: a deletion chained before an
  // insertion, queried through a selection.
  Database db = MakeDb();
  QueryPtr q = When(
      Sel(Ge(Col(0), Int(2)), Rel("R")),
      Comp(Upd(Del("R", Sel(Lt(Col(1), Int(15)), Rel("R")))),
           Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S"))))));

  for (Strategy strategy : {Strategy::kLazy, Strategy::kFilter2,
                            Strategy::kFilter3, Strategy::kHybrid}) {
    AnalyzeOptions options;
    options.strategy = strategy;
    ASSERT_OK_AND_ASSIGN(AnalyzeReport report,
                         ExplainAnalyze(q, db, schema_, options));
    ASSERT_OK_AND_ASSIGN(Relation expected,
                         Execute(q, db, schema_, Strategy::kDirect));
    EXPECT_EQ(report.actual_rows, expected.size())
        << "strategy " << StrategyName(strategy);
    EXPECT_FALSE(report.exec.route.empty())
        << "strategy " << StrategyName(strategy);
  }
}

TEST_F(ExplainAnalyzeTest, TracingOffOmitsSpansButKeepsCounters) {
  Database db = MakeDb();
  QueryPtr q = When(Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")),
                    Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S")))));
  AnalyzeOptions options;
  options.tracing = false;
  // An eager route must materialize the state as shared views, so the
  // counter half of the report is non-trivially populated.
  options.strategy = Strategy::kFilter2;
  ASSERT_OK_AND_ASSIGN(AnalyzeReport report,
                       ExplainAnalyze(q, db, schema_, options));
  EXPECT_TRUE(report.exec.spans.empty());
  EXPECT_GT(report.exec.views_created, 0u);
}

TEST_F(ExplainAnalyzeTest, ChargesPropagateToCallersContext) {
  Database db = MakeDb();
  QueryPtr q = When(Sel(Ge(Col(0), Int(1)), Rel("R")),
                    Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S")))));
  AnalyzeOptions options;
  options.strategy = Strategy::kFilter2;
  ExecContext ctx;
  {
    ExecContextScope scope(&ctx);
    ASSERT_OK(ExplainAnalyze(q, db, schema_, options).status());
  }
  // The analyzed run's work is visible to the enclosing accounting.
  EXPECT_GT(ctx.Snapshot().views_created, 0u);
}

}  // namespace
}  // namespace hql
