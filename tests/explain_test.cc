#include "opt/explain.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "common/rng.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

TEST(ExplainTest, ReportsShapeAndForms) {
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  StatsCatalog stats;
  stats.SetCardinality("R", 1000, 2);
  stats.SetCardinality("S", 1000, 2);

  QueryPtr q = When(Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S")),
                    Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S")))));
  ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(q, schema, stats));

  EXPECT_EQ(report.arity, 4u);
  EXPECT_EQ(report.when_depth, 1u);
  EXPECT_GT(report.tree_size, 0.0);
  EXPECT_TRUE(report.has_mod_enf);
  EXPECT_FALSE(report.lazy_is_empty);
  EXPECT_GT(report.estimated_cardinality, 0.0);
  EXPECT_GT(report.state_materialization, 0.0);

  // The textual forms parse back.
  EXPECT_OK(ParseQuery(report.enf).status());
  EXPECT_OK(ParseQuery(report.lazy).status());
  EXPECT_OK(ParseQuery(report.plan).status());

  std::string text = FormatExplain(report);
  EXPECT_NE(text.find("enf:"), std::string::npos);
  EXPECT_NE(text.find("decisions:"), std::string::npos);
}

TEST(ExplainTest, DetectsStaticEmptiness) {
  // The Example 2.1(b) query is proved empty in the report.
  Schema schema = MakeSchema({{"R", 2}, {"S", 2}});
  StatsCatalog stats = StatsCatalog();
  QueryPtr rjoins = Join(Eq(Col(0), Col(2)), Rel("R"), Rel("S"));
  QueryPtr query1 = When(
      Diff(When(rjoins, Upd(Ins("R", Sel(Ge(Col(0), Int(30)), Rel("S"))))),
           When(rjoins, Upd(Ins("R", Sel(Gt(Col(0), Int(30)), Rel("S")))))),
      Upd(Del("S", Sel(Lt(Col(0), Int(60)), Rel("S")))));
  ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(query1, schema, stats));
  EXPECT_TRUE(report.lazy_is_empty);
  EXPECT_DOUBLE_EQ(report.lazy_cost, 0.0);
}

TEST(ExplainTest, FlagsPreciseDeltaFallback) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  StatsCatalog stats;
  // An explicit substitution has no mod-ENF form.
  QueryPtr q = When(Rel("R"), Sub1(U(Rel("R"), Rel("S")), "R"));
  ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(q, schema, stats));
  EXPECT_FALSE(report.has_mod_enf);
  EXPECT_NE(FormatExplain(report).find("precise deltas"),
            std::string::npos);
}

TEST(ExplainTest, NeverFailsOnRandomQueries) {
  Rng rng(1031);
  Schema schema = PropertySchema();
  StatsCatalog stats;
  for (const auto& [name, arity] : schema.arities()) {
    stats.SetCardinality(name, 500, arity);
  }
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;
  for (int trial = 0; trial < 150; ++trial) {
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(ExplainReport report, Explain(q, schema, stats));
    EXPECT_FALSE(FormatExplain(report).empty());
    EXPECT_OK(ParseQuery(report.lazy).status()) << report.lazy;
  }
}

}  // namespace
}  // namespace hql
