// Parameterized cross-strategy agreement sweeps (TEST_P): one fixture, a
// grid of (strategy, workload shape, seed) instantiations. This is the
// library's broadest soundness net: every point of the paper's evaluation
// spectrum must return the value of the direct semantics on every workload
// shape.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "opt/planner.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT

enum class Shape {
  kPlainUpdates,   // when-states are update chains
  kSubstitutions,  // explicit substitutions
  kConditionals,   // conditional updates
  kAggregates,     // aggregation in bodies and states
  kDeepNesting,    // depth-4 when towers
};

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kPlainUpdates:
      return "PlainUpdates";
    case Shape::kSubstitutions:
      return "Substitutions";
    case Shape::kConditionals:
      return "Conditionals";
    case Shape::kAggregates:
      return "Aggregates";
    case Shape::kDeepNesting:
      return "DeepNesting";
  }
  return "?";
}

AstGenOptions OptionsFor(Shape shape) {
  AstGenOptions options;
  options.max_depth = 3;
  switch (shape) {
    case Shape::kPlainUpdates:
      options.allow_compose = false;
      break;
    case Shape::kSubstitutions:
      break;
    case Shape::kConditionals:
      options.allow_cond = true;
      break;
    case Shape::kAggregates:
      options.allow_aggregate = true;
      break;
    case Shape::kDeepNesting:
      options.max_depth = 5;
      break;
  }
  return options;
}

using Param = std::tuple<Strategy, Shape, uint64_t /*seed*/>;

class StrategyAgreementTest : public ::testing::TestWithParam<Param> {};

TEST_P(StrategyAgreementTest, MatchesDirectSemantics) {
  const auto& [strategy, shape, seed] = GetParam();
  Rng rng(seed);
  Schema schema = PropertySchema();
  AstGenOptions options = OptionsFor(shape);
  int evaluated = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    size_t arity = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    QueryPtr q;
    if (shape == Shape::kPlainUpdates) {
      q = Query::When(RandomQuery(&rng, schema, arity, options),
                      Upd(RandomUpdate(&rng, schema, options)));
    } else {
      q = RandomQuery(&rng, schema, arity, options);
    }
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    auto result = Execute(q, db, schema, strategy);
    ASSERT_TRUE(result.ok())
        << StrategyName(strategy) << ": " << result.status().ToString();
    ++evaluated;
    EXPECT_EQ(result.value(), reference)
        << StrategyName(strategy) << " diverged on " << q->ToString();
  }
  EXPECT_EQ(evaluated, 40);
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto& [strategy, shape, seed] = info.param;
  std::string name = StrategyName(strategy);
  name[0] = static_cast<char>(std::toupper(name[0]));
  return name + "_" + ShapeName(shape) + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, StrategyAgreementTest,
    ::testing::Combine(
        ::testing::Values(Strategy::kLazy, Strategy::kFilter1,
                          Strategy::kFilter2, Strategy::kFilter3,
                          Strategy::kHybrid),
        ::testing::Values(Shape::kPlainUpdates, Shape::kSubstitutions,
                          Shape::kConditionals, Shape::kAggregates,
                          Shape::kDeepNesting),
        ::testing::Values(1u, 2u, 3u)),
    ParamName);

// A second parameterized sweep: the planner's reuse knob must never change
// results, only plans.
class ReuseParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ReuseParamTest, PlansStayEquivalent) {
  const double reuse = GetParam();
  Rng rng(611);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;
  PlannerOptions popts;
  popts.reuse_count = reuse;
  for (int trial = 0; trial < 30; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    ASSERT_OK_AND_ASSIGN(Relation out,
                         Execute(q, db, schema, Strategy::kHybrid, popts));
    EXPECT_EQ(out, reference) << "reuse=" << reuse << ": " << q->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(ReuseSweep, ReuseParamTest,
                         ::testing::Values(1.0, 4.0, 64.0, 1024.0));

// Third sweep: lazy-tree-size caps must never change results, only which
// side of the lazy/eager line each `when` lands on.
class TreeCapParamTest : public ::testing::TestWithParam<double> {};

TEST_P(TreeCapParamTest, CapsPreserveSemantics) {
  const double cap = GetParam();
  Rng rng(613);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 4;
  options.allow_cond = true;
  options.allow_aggregate = true;
  PlannerOptions popts;
  popts.max_lazy_tree_size = cap;
  for (int trial = 0; trial < 30; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    ASSERT_OK_AND_ASSIGN(Relation out,
                         Execute(q, db, schema, Strategy::kHybrid, popts));
    EXPECT_EQ(out, reference) << "cap=" << cap << ": " << q->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(TreeCapSweep, TreeCapParamTest,
                         ::testing::Values(1.0, 16.0, 256.0, 1e6));

// Fourth sweep: index policies must never change results, only how
// selections and joins are executed. index_min_rows is pinned to 1 so the
// tiny property databases actually exercise the probe kernels; manual mode
// pre-builds single-column indexes on every relation, advisor mode builds
// on first access.
enum class IndexPolicy { kOff, kManual, kAdvisor };

const char* IndexPolicyName(IndexPolicy p) {
  switch (p) {
    case IndexPolicy::kOff:
      return "IndexOff";
    case IndexPolicy::kManual:
      return "IndexManual";
    case IndexPolicy::kAdvisor:
      return "IndexAdvisor";
  }
  return "?";
}

using IndexParam = std::tuple<Strategy, IndexPolicy>;

class IndexPolicyParamTest : public ::testing::TestWithParam<IndexParam> {};

TEST_P(IndexPolicyParamTest, PoliciesPreserveSemantics) {
  const auto& [strategy, policy] = GetParam();
  Rng rng(617);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;
  IndexAdvisor advisor(/*build_threshold=*/1);
  PlannerOptions popts;
  popts.index_min_rows = 1;
  switch (policy) {
    case IndexPolicy::kOff:
      popts.index_mode = IndexMode::kOff;
      break;
    case IndexPolicy::kManual:
      popts.index_mode = IndexMode::kManual;
      break;
    case IndexPolicy::kAdvisor:
      popts.index_mode = IndexMode::kAdvisor;
      popts.index_advisor = &advisor;
      break;
  }
  for (int trial = 0; trial < 30; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    if (policy == IndexPolicy::kManual) {
      for (const auto& [name, arity] : schema.arities()) {
        for (size_t col = 0; col < arity; ++col) {
          ASSERT_OK(db.BuildIndex(name, {col}).status());
        }
      }
    }
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    ASSERT_OK_AND_ASSIGN(Relation out,
                         Execute(q, db, schema, strategy, popts));
    EXPECT_EQ(out, reference)
        << StrategyName(strategy) << "/" << IndexPolicyName(policy) << ": "
        << q->ToString();
  }
}

std::string IndexParamName(const ::testing::TestParamInfo<IndexParam>& info) {
  const auto& [strategy, policy] = info.param;
  std::string name = StrategyName(strategy);
  name[0] = static_cast<char>(std::toupper(name[0]));
  return name + "_" + IndexPolicyName(policy);
}

INSTANTIATE_TEST_SUITE_P(
    IndexSweep, IndexPolicyParamTest,
    ::testing::Combine(
        ::testing::Values(Strategy::kDirect, Strategy::kLazy,
                          Strategy::kFilter1, Strategy::kFilter2,
                          Strategy::kFilter3, Strategy::kHybrid),
        ::testing::Values(IndexPolicy::kOff, IndexPolicy::kManual,
                          IndexPolicy::kAdvisor)),
    IndexParamName);

// Fifth sweep: the columnar/vectorized route must never change results,
// only how large flat-base selections and equi-joins execute.
// columnar_min_rows is pinned to 1 and the morsel size kept tiny so the
// small property databases actually cross the vectorized kernels (and
// their morsel boundaries) instead of falling back to the row path.
using ColumnarParam = std::tuple<Strategy, ColumnarMode>;

class ColumnarParamTest : public ::testing::TestWithParam<ColumnarParam> {};

TEST_P(ColumnarParamTest, ModesPreserveSemantics) {
  const auto& [strategy, mode] = GetParam();
  Rng rng(619);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;
  PlannerOptions popts;
  popts.columnar_mode = mode;
  popts.columnar_min_rows = 1;
  popts.columnar_morsel_rows = 4;  // several morsels even on tiny bases
  popts.columnar_threads = 2;      // exercise the parallel dispatch path
  for (int trial = 0; trial < 30; ++trial) {
    Database db = RandomDatabase(&rng, schema, 6, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(Relation reference,
                         Execute(q, db, schema, Strategy::kDirect));
    ASSERT_OK_AND_ASSIGN(Relation out,
                         Execute(q, db, schema, strategy, popts));
    EXPECT_EQ(out, reference)
        << StrategyName(strategy) << "/" << ColumnarModeName(mode) << ": "
        << q->ToString();
  }
}

std::string ColumnarParamName(
    const ::testing::TestParamInfo<ColumnarParam>& info) {
  const auto& [strategy, mode] = info.param;
  std::string name = StrategyName(strategy);
  name[0] = static_cast<char>(std::toupper(name[0]));
  std::string mode_name = ColumnarModeName(mode);
  mode_name[0] = static_cast<char>(std::toupper(mode_name[0]));
  return name + "_Columnar" + mode_name;
}

INSTANTIATE_TEST_SUITE_P(
    ColumnarSweep, ColumnarParamTest,
    ::testing::Combine(
        ::testing::Values(Strategy::kDirect, Strategy::kLazy,
                          Strategy::kFilter1, Strategy::kFilter2,
                          Strategy::kFilter3, Strategy::kHybrid),
        ::testing::Values(ColumnarMode::kOff, ColumnarMode::kAuto)),
    ColumnarParamName);

}  // namespace
}  // namespace hql
