#ifndef HQL_TESTS_TEST_UTIL_H_
#define HQL_TESTS_TEST_UTIL_H_

// Shared helpers for the hql test suites.

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()
#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()

// Unwraps a Result<T> or fails the test.
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL_(                                  \
      HQL_RESULT_CONCAT_(_test_result_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)             \
  auto tmp = (expr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();            \
  lhs = std::move(tmp).value();

namespace hql::testing {

/// Builds a schema from (name, arity) pairs; CHECK-fails on errors.
inline Schema MakeSchema(
    std::initializer_list<std::pair<std::string, size_t>> relations) {
  Schema schema;
  for (const auto& [name, arity] : relations) {
    Status st = schema.AddRelation(name, arity);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }
  return schema;
}

/// Builds a relation of int tuples: Ints({{1, 2}, {3, 4}}).
inline Relation Ints(std::initializer_list<std::vector<int64_t>> rows) {
  size_t arity = rows.size() > 0 ? rows.begin()->size() : 1;
  std::vector<Tuple> tuples;
  for (const auto& row : rows) {
    Tuple t;
    t.reserve(row.size());
    for (int64_t v : row) t.push_back(Value::Int(v));
    tuples.push_back(std::move(t));
  }
  return Relation::FromTuples(arity, std::move(tuples));
}

/// An int tuple.
inline Tuple IntRow(std::initializer_list<int64_t> values) {
  Tuple t;
  t.reserve(values.size());
  for (int64_t v : values) t.push_back(Value::Int(v));
  return t;
}

}  // namespace hql::testing

#endif  // HQL_TESTS_TEST_UTIL_H_
