// Property suite for the copy-on-write storage layer: evaluating any query
// under any strategy must give bit-identical results whether the database's
// relations are overlay-backed views or consolidated flat relations. The
// overlays come from the same places they do in production — EvalState
// deriving hypothetical states, and ApplyDelta stacking version-tree edges.

#include <gtest/gtest.h>

#include <vector>

#include "ast/builders.h"
#include "ast/hypo.h"
#include "ast/query.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "storage/view.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/version_tree.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT

constexpr Strategy kAllStrategies[] = {
    Strategy::kDirect,  Strategy::kLazy,    Strategy::kFilter1,
    Strategy::kFilter2, Strategy::kFilter3, Strategy::kHybrid,
};

// Every strategy, on both representations, must agree with the reference.
void ExpectAllAgree(const QueryPtr& q, const Database& overlay,
                    const Database& consolidated, const Schema& schema,
                    int trial) {
  ASSERT_OK_AND_ASSIGN(
      Relation reference,
      Execute(q, consolidated, schema, Strategy::kDirect));
  for (Strategy s : kAllStrategies) {
    ASSERT_OK_AND_ASSIGN(Relation on_overlay, Execute(q, overlay, schema, s));
    ASSERT_OK_AND_ASSIGN(Relation on_flat,
                         Execute(q, consolidated, schema, s));
    EXPECT_EQ(on_overlay, reference)
        << "strategy " << static_cast<int>(s) << " on overlay, trial "
        << trial << ", query " << q->ToString();
    EXPECT_EQ(on_flat, reference)
        << "strategy " << static_cast<int>(s) << " on consolidated, trial "
        << trial << ", query " << q->ToString();
  }
}

TEST(CowOverlayTest, RandomVersionTreesAgreeAcrossRepresentations) {
  Rng rng(20260806);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;

  for (int trial = 0; trial < 12; ++trial) {
    Database base = RandomDatabase(&rng, schema, 24, 8);

    // A small random version tree: every node's state is the composition
    // of the random edges on its root path.
    VersionTree tree;
    std::vector<VersionTree::NodeId> nodes = {VersionTree::kRoot};
    for (int i = 0; i < 4; ++i) {
      VersionTree::NodeId parent = nodes[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(nodes.size()) - 1))];
      nodes.push_back(tree.AddChild(parent, "n" + std::to_string(i),
                                    RandomHypo(&rng, schema, options)));
    }

    for (size_t n = 1; n < nodes.size(); ++n) {
      HypoExprPtr state = tree.PathState(nodes[n]);
      // The derived state as produced by the evaluator: overlay-backed.
      ASSERT_OK_AND_ASSIGN(Database overlay, EvalState(state, base));
      Database consolidated = overlay.Consolidated();
      ASSERT_TRUE(overlay == consolidated)
          << "trial " << trial << " node " << n;

      QueryPtr q = RandomQuery(&rng, schema, 2, options);
      ExpectAllAgree(q, overlay, consolidated, schema, trial);
    }
  }
}

TEST(CowOverlayTest, StackedApplyDeltaAgreesWithConsolidated) {
  Rng rng(4242);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  options.allow_aggregate = true;

  for (int trial = 0; trial < 12; ++trial) {
    Database base = RandomDatabase(&rng, schema, 30, 8);

    // Stack several random overlays per relation without ever
    // consolidating (fraction pinned high), then compare against the flat
    // database obtained by consolidating everything.
    Database overlay = base;
    for (int round = 0; round < 3; ++round) {
      for (const auto& [name, arity] : schema.arities()) {
        ASSERT_OK_AND_ASSIGN(RelationView v, overlay.GetView(name));
        Relation dels = SampleFraction(&rng, v.Materialize(), 0.3);
        Relation adds = GenRelation(&rng, 4, arity, 8, 8);
        ASSERT_OK(overlay.SetView(
            name, v.ApplyDelta(adds.tuples(), dels.tuples(), 1e9)));
      }
    }
    Database consolidated = overlay.Consolidated();
    ASSERT_TRUE(overlay == consolidated) << "trial " << trial;

    // Hypothetical queries on top of the already-overlaid database: the
    // evaluators stack further deltas on the stored views.
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ExpectAllAgree(q, overlay, consolidated, schema, trial);
    QueryPtr hypo =
        Query::When(RandomQuery(&rng, schema, 2, options),
                    RandomHypo(&rng, schema, options));
    ExpectAllAgree(hypo, overlay, consolidated, schema, trial);
  }
}

TEST(CowOverlayTest, VersionTreeCompareQueriesAgree) {
  Rng rng(99);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 2;
  options.allow_cond = true;
  options.allow_aggregate = true;

  for (int trial = 0; trial < 8; ++trial) {
    Database base = RandomDatabase(&rng, schema, 20, 8);
    VersionTree tree;
    VersionTree::NodeId a = tree.AddChild(VersionTree::kRoot, "a",
                                          RandomHypo(&rng, schema, options));
    VersionTree::NodeId b =
        tree.AddChild(a, "b", RandomHypo(&rng, schema, options));
    VersionTree::NodeId c = tree.AddChild(VersionTree::kRoot, "c",
                                          RandomHypo(&rng, schema, options));

    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    for (auto [x, y] : {std::pair{a, b}, {a, c}, {b, c}}) {
      QueryPtr cmp = tree.CompareAt(x, y, q);
      ExpectAllAgree(cmp, base, base.Consolidated(), schema, trial);
    }
  }
}

}  // namespace
}  // namespace hql
