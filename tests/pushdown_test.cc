#include "hql/pushdown.h"

#include <gtest/gtest.h>

#include "ast/builders.h"
#include "ast/metrics.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/filter1.h"
#include "hql/enf.h"
#include "hql/reduce.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using ::hql::testing::MakeSchema;

TEST(PushdownTest, EliminatesSimpleWhen) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  QueryPtr q = When(U(Rel("R"), Rel("S")), Upd(Ins("R", Rel("S"))));
  ASSERT_OK_AND_ASSIGN(QueryPtr pushed, PushdownReduce(q, schema));
  EXPECT_TRUE(IsPureRelAlg(pushed));
  EXPECT_TRUE(pushed->Equals(*U(U(Rel("R"), Rel("S")), Rel("S"))));
}

TEST(PushdownTest, AgreesWithReduceStructurally) {
  // The push-based route and the substitution-based route reach the same
  // pure RA query — the Figure 1 rules are complete for reduction.
  Rng rng(701);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_cond = true;
  for (int trial = 0; trial < 250; ++trial) {
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr pushed, PushdownReduce(q, schema));
    EXPECT_TRUE(IsPureRelAlg(pushed)) << q->ToString();
    ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(q, schema));
    ASSERT_OK_AND_ASSIGN(QueryPtr reduced, Reduce(enf, schema));
    EXPECT_TRUE(pushed->Equals(*reduced))
        << q->ToString() << "\npush: " << pushed->ToString()
        << "\nred:  " << reduced->ToString();
  }
}

TEST(PushdownTest, PreservesSemanticsRandomized) {
  Rng rng(703);
  Schema schema = PropertySchema();
  AstGenOptions options;
  options.max_depth = 3;
  options.allow_aggregate = true;
  for (int trial = 0; trial < 200; ++trial) {
    Database db = RandomDatabase(&rng, schema, 5, 8);
    QueryPtr q = RandomQuery(&rng, schema, 2, options);
    ASSERT_OK_AND_ASSIGN(QueryPtr pushed, PushdownReduce(q, schema));
    ASSERT_OK_AND_ASSIGN(Relation before, EvalDirect(q, db));
    ASSERT_OK_AND_ASSIGN(Relation after, EvalDirect(pushed, db));
    EXPECT_EQ(before, after) << q->ToString();
  }
}

TEST(PushdownTest, PartialPushLeavesResidualWhens) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  // A when over a 3-level body: budget 1 pushes one level only.
  QueryPtr body = U(N(Rel("R"), Rel("S")), Diff(Rel("R"), Rel("S")));
  QueryPtr q = When(body, Sub1(U(Rel("R"), Rel("S")), "R"));
  ASSERT_OK_AND_ASSIGN(QueryPtr partial, PushdownPartial(q, schema, 1));
  EXPECT_FALSE(IsPureRelAlg(partial));       // residual whens remain
  EXPECT_EQ(partial->kind(), QueryKind::kUnion);  // one level was pushed
  EXPECT_TRUE(IsEnf(partial));               // still evaluable as ENF

  // Budget 0 is the identity on the when placement.
  ASSERT_OK_AND_ASSIGN(QueryPtr frozen, PushdownPartial(q, schema, 0));
  EXPECT_EQ(frozen->kind(), QueryKind::kWhen);

  // All partial depths evaluate identically.
  Database db(schema);
  ASSERT_OK(db.Set("R", testing::Ints({{1}, {2}})));
  ASSERT_OK(db.Set("S", testing::Ints({{2}, {3}})));
  ASSERT_OK_AND_ASSIGN(Relation reference, EvalDirect(q, db));
  for (int depth : {0, 1, 2, 3, -1}) {
    ASSERT_OK_AND_ASSIGN(QueryPtr p, PushdownPartial(q, schema, depth));
    ASSERT_OK_AND_ASSIGN(QueryPtr enf, ToEnf(p, schema));
    ASSERT_OK_AND_ASSIGN(Relation out, RunFilter1(enf, db));
    EXPECT_EQ(out, reference) << "depth " << depth;
  }
}

TEST(PushdownTest, NestedWhensFold) {
  Schema schema = MakeSchema({{"R", 1}, {"S", 1}});
  QueryPtr q = When(When(Rel("R"), Sub1(Rel("S"), "R")),
                    Sub1(U(Rel("R"), Rel("S")), "S"));
  ASSERT_OK_AND_ASSIGN(QueryPtr pushed, PushdownReduce(q, schema));
  EXPECT_TRUE(IsPureRelAlg(pushed));
  // Outer state first: S := R u S; then R reads S's new value.
  EXPECT_TRUE(pushed->Equals(*U(Rel("R"), Rel("S")))) << pushed->ToString();
}

}  // namespace
}  // namespace hql
