// Columnar execution tests: the ColumnBatch cache lifecycle on Relation,
// predicate compilation onto batch encodings, and randomized agreement of
// the vectorized kernels (eval/vector_exec.h) with the row kernels —
// results must be bit-identical, not merely set-equal, across typed
// fast paths, overlays, and morsel boundaries.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "ast/builders.h"
#include "common/rng.h"
#include "eval/ra_eval.h"
#include "eval/vector_exec.h"
#include "storage/column_batch.h"
#include "storage/relation.h"
#include "storage/view.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hql {
namespace {

using namespace hql::dsl;  // NOLINT
using hql::testing::IntRow;
using hql::testing::Ints;

// A columnar config that engages on tiny test relations and crosses morsel
// boundaries (morsel_rows intentionally smaller than the data).
ColumnarConfig TestConfig(size_t morsel_rows = 8, size_t threads = 1) {
  ColumnarConfig config;
  config.mode = ColumnarMode::kAuto;
  config.min_rows = 1;
  config.morsel_rows = morsel_rows;
  config.threads = threads;
  return config;
}

Relation MixedRelation() {
  // Column 0: all int. Column 1: all double. Column 2: mixed types.
  std::vector<Tuple> rows;
  rows.push_back({Value::Int(1), Value::Double(1.5), Value::Str("a")});
  rows.push_back({Value::Int(2), Value::Double(-2.0), Value::Int(7)});
  rows.push_back({Value::Int(3), Value::Double(0.0), Value::Bool(true)});
  rows.push_back({Value::Int(4), Value::Double(4.25), Value::Nul()});
  return Relation::FromTuples(3, std::move(rows));
}

// ---------------------------------------------------------------------------
// Batch representation.
// ---------------------------------------------------------------------------

TEST(ColumnBatchTest, EncodingsFollowColumnTypes) {
  Relation rel = MixedRelation();
  ColumnBatch batch(rel);
  EXPECT_EQ(batch.rows(), rel.size());
  EXPECT_EQ(batch.arity(), 3u);
  EXPECT_EQ(batch.encoding(0), ColumnEncoding::kInt64);
  EXPECT_EQ(batch.encoding(1), ColumnEncoding::kFloat64);
  EXPECT_EQ(batch.encoding(2), ColumnEncoding::kGeneric);
}

TEST(ColumnBatchTest, ValueAtReboxesEveryEncoding) {
  Relation rel = MixedRelation();
  ColumnBatch batch(rel);
  const std::vector<Tuple>& tuples = rel.tuples();
  for (size_t r = 0; r < batch.rows(); ++r) {
    for (size_t c = 0; c < batch.arity(); ++c) {
      EXPECT_EQ(batch.ValueAt(r, c), tuples[r][c]) << r << "," << c;
    }
  }
}

TEST(ColumnBatchTest, RowOrderMatchesSortedBase) {
  Rng rng(101);
  Relation rel = GenRelation(&rng, 100, 2, 50);
  ColumnBatch batch(rel);
  ASSERT_EQ(batch.encoding(0), ColumnEncoding::kInt64);
  const int64_t* col0 = batch.ints(0);
  for (size_t r = 0; r < batch.rows(); ++r) {
    EXPECT_EQ(Value::Int(col0[r]), rel.tuples()[r][0]) << r;
  }
}

TEST(ColumnBatchTest, EmptyRelationBatch) {
  Relation rel(2);
  ColumnBatch batch(rel);
  EXPECT_EQ(batch.rows(), 0u);
  EXPECT_EQ(batch.arity(), 2u);
}

// ---------------------------------------------------------------------------
// Cache lifecycle on Relation (mirrors the secondary-index cache).
// ---------------------------------------------------------------------------

TEST(ColumnBatchCacheTest, InstallOnceAndShared) {
  Relation rel = Ints({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(rel.ExistingColumnarBatch(), nullptr);
  ColumnBatchPtr first = rel.ColumnarBatch();
  ASSERT_NE(first, nullptr);
  ColumnBatchPtr second = rel.ColumnarBatch();
  EXPECT_EQ(first.get(), second.get());  // one transposition, shared
  EXPECT_EQ(rel.ExistingColumnarBatch().get(), first.get());
}

TEST(ColumnBatchCacheTest, CopyDropsMoveCarries) {
  Relation rel = Ints({{1, 2}, {3, 4}});
  ColumnBatchPtr built = rel.ColumnarBatch();

  Relation copy = rel;  // copies never share the cache
  EXPECT_EQ(copy.ExistingColumnarBatch(), nullptr);

  Relation moved = std::move(rel);  // moves carry it
  EXPECT_EQ(moved.ExistingColumnarBatch().get(), built.get());
}

TEST(ColumnBatchCacheTest, MutationInvalidates) {
  Relation rel = Ints({{1, 2}, {3, 4}});
  ColumnBatchPtr built = rel.ColumnarBatch();
  ASSERT_NE(built, nullptr);

  rel.Insert(IntRow({5, 6}));
  EXPECT_EQ(rel.ExistingColumnarBatch(), nullptr);
  ColumnBatchPtr rebuilt = rel.ColumnarBatch();
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt.get(), built.get());
  EXPECT_EQ(rebuilt->rows(), 3u);

  rel.Erase(IntRow({1, 2}));
  EXPECT_EQ(rel.ExistingColumnarBatch(), nullptr);
  EXPECT_EQ(rel.ColumnarBatch()->rows(), 2u);

  // The old batch stays valid for holders that grabbed it before the
  // mutation — it images the old content.
  EXPECT_EQ(built->rows(), 2u);
  EXPECT_EQ(built->ValueAt(0, 0), Value::Int(1));
}

// ---------------------------------------------------------------------------
// Predicate compilation.
// ---------------------------------------------------------------------------

TEST(VectorPredicateTest, CompilesConjunctionsOfColumnVsLiteral) {
  Relation rel = MixedRelation();
  ColumnBatch batch(rel);
  auto compiled = CompileVectorPredicate(
      And(Ge(Col(0), Int(2)), Lt(Col(1), Dbl(4.0))), batch);
  ASSERT_TRUE(compiled.has_value());
  ASSERT_EQ(compiled->conjuncts.size(), 2u);
  EXPECT_EQ(compiled->conjuncts[0].kind, VectorConjunct::Kind::kIntInt);
  EXPECT_EQ(compiled->conjuncts[1].kind, VectorConjunct::Kind::kNumDouble);
}

TEST(VectorPredicateTest, RejectsNonConjunctiveShapes) {
  Relation rel = MixedRelation();
  ColumnBatch batch(rel);
  // Disjunction, column-vs-column, and arithmetic are row-kernel shapes.
  EXPECT_FALSE(
      CompileVectorPredicate(Or(Ge(Col(0), Int(2)), Lt(Col(0), Int(1))),
                             batch)
          .has_value());
  EXPECT_FALSE(CompileVectorPredicate(Eq(Col(0), Col(1)), batch).has_value());
  EXPECT_FALSE(CompileVectorPredicate(Ge(Add(Col(0), Int(1)), Int(2)), batch)
                   .has_value());
}

TEST(VectorPredicateTest, SelectionMatchesRowEvaluationPerConjunct) {
  Relation rel = MixedRelation();
  ColumnBatch batch(rel);
  // Cross-type comparisons exercise Value::Compare's int/double tie-break;
  // out-of-range columns fold to the row kernels' null semantics.
  std::vector<ScalarExprPtr> preds = {
      Ge(Col(0), Int(2)),     Eq(Col(0), Dbl(2.0)),  Ne(Col(0), Dbl(2.0)),
      Lt(Col(1), Int(1)),     Le(Col(1), Dbl(0.0)),  Gt(Col(2), Int(0)),
      Eq(Col(2), Str("a")),   Ge(Col(7), Int(0)),    Bool(true),
      Bool(false),            Lt(Col(1), Dbl(-1.9)),
  };
  for (const ScalarExprPtr& pred : preds) {
    auto compiled = CompileVectorPredicate(pred, batch);
    ASSERT_TRUE(compiled.has_value()) << pred->ToString();
    std::vector<uint32_t> sel;
    EvalPredicateBatch(batch, *compiled, 0, batch.rows(), &sel);
    Relation expected = FilterRelation(rel, *pred);
    std::vector<Tuple> got;
    for (uint32_t r : sel) got.push_back(rel.tuples()[r]);
    EXPECT_EQ(Relation::FromSortedUnique(rel.arity(), std::move(got)),
              expected)
        << pred->ToString();
  }
}

// ---------------------------------------------------------------------------
// Vectorized kernels vs row kernels.
// ---------------------------------------------------------------------------

TEST(ColumnarFilterTest, FallsBackBelowMinRowsAndOnHeavyOverlays) {
  Relation rel = Ints({{1, 2}, {3, 4}, {5, 6}});
  RelationView view(std::make_shared<Relation>(rel));
  ScalarExprPtr pred = Ge(Col(0), Int(3));

  ColumnarConfig off;  // mode kOff
  EXPECT_FALSE(TryColumnarFilter(view, pred, off).has_value());

  ColumnarConfig small = TestConfig();
  small.min_rows = 100;  // base too small
  EXPECT_FALSE(TryColumnarFilter(view, pred, small).has_value());

  // An overlay past max_delta_fraction of the base falls back too.
  RelationView heavy = RelationView::Overlay(
      std::make_shared<Relation>(rel),
      {IntRow({7, 8}), IntRow({9, 10})}, {IntRow({1, 2})});
  ColumnarConfig strict = TestConfig();
  strict.max_delta_fraction = 0.1;
  EXPECT_FALSE(TryColumnarFilter(heavy, pred, strict).has_value());
  // ...but the same overlay vectorizes under the default fraction of a
  // larger base.
  EXPECT_TRUE(TryColumnarFilter(view, pred, TestConfig()).has_value());
}

TEST(ColumnarFilterTest, OverlayResultsAreBitIdentical) {
  Rng rng(271);
  Relation base = GenRelation(&rng, 500, 2, 200);
  RelationPtr shared = std::make_shared<Relation>(std::move(base));
  Relation dels = SampleFraction(&rng, *shared, 0.05);
  Relation adds = GenRelation(&rng, 20, 2, 200);
  RelationView view = RelationView::Overlay(
      shared, adds.tuples(), dels.tuples());

  ScalarExprPtr pred = And(Ge(Col(0), Int(40)), Lt(Col(1), Int(700000)));
  auto columnar = TryColumnarFilter(view, pred, TestConfig(64));
  ASSERT_TRUE(columnar.has_value());
  EXPECT_EQ(*columnar, FilterRelation(view, *pred));
}

TEST(ColumnarJoinTest, EquiJoinMatchesRowHashJoin) {
  Rng rng(277);
  Relation lhs = GenRelation(&rng, 300, 2, 60);
  Relation rhs = GenRelation(&rng, 80, 2, 60);
  RelationView lv(std::make_shared<Relation>(std::move(lhs)));
  RelationView rv(std::make_shared<Relation>(std::move(rhs)));

  // Pure equi-join and equi-join with a residual conjunct.
  std::vector<ScalarExprPtr> preds = {
      Eq(Col(0), Col(2)),
      And(Eq(Col(0), Col(2)), Lt(Col(1), Col(3))),
  };
  for (const ScalarExprPtr& pred : preds) {
    auto columnar = TryColumnarJoin(lv, rv, pred, TestConfig(32));
    ASSERT_TRUE(columnar.has_value()) << pred->ToString();
    EXPECT_EQ(*columnar, JoinRelations(lv, rv, pred)) << pred->ToString();
  }

  // A pure theta join has no equality conjunct to hash on.
  EXPECT_FALSE(
      TryColumnarJoin(lv, rv, Lt(Col(0), Col(2)), TestConfig()).has_value());
}

TEST(ColumnarJoinTest, OverlayedProbeSideIsPatched) {
  Rng rng(281);
  Relation probe = GenRelation(&rng, 400, 2, 80);
  RelationPtr shared = std::make_shared<Relation>(std::move(probe));
  Relation dels = SampleFraction(&rng, *shared, 0.04);
  Relation adds = GenRelation(&rng, 15, 2, 80);
  RelationView lv = RelationView::Overlay(
      shared, adds.tuples(), dels.tuples());
  RelationView rv(std::make_shared<Relation>(GenRelation(&rng, 50, 2, 80)));

  ScalarExprPtr pred = Eq(Col(0), Col(2));
  auto columnar = TryColumnarJoin(lv, rv, pred, TestConfig(32));
  ASSERT_TRUE(columnar.has_value());
  EXPECT_EQ(*columnar, JoinRelations(lv, rv, pred));
}

// Randomized property sweep: the routed kernels must equal the row kernels
// bit-identically on random relations, predicates, overlays, thread counts
// and morsel boundaries.
TEST(ColumnarPropertyTest, VectorizedEqualsRowKernels) {
  Rng rng(283);
  AstGenOptions options;
  options.literal_domain = 16;
  IndexConfig no_indexes;
  for (int trial = 0; trial < 60; ++trial) {
    size_t arity = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    size_t rows = 1 + static_cast<size_t>(rng.Uniform(0, 400));
    Relation base = GenRelation(&rng, rows, arity, 16, 16);
    RelationPtr shared = std::make_shared<Relation>(std::move(base));
    RelationView view(shared);
    if (rng.Uniform(0, 2) == 0) {
      Relation dels = SampleFraction(&rng, *shared, 0.05);
      Relation adds = GenRelation(&rng, rng.Uniform(0, 10), arity, 16, 16);
      view = RelationView::Overlay(shared, adds.tuples(), dels.tuples());
    }
    ColumnarConfig config = TestConfig(
        /*morsel_rows=*/1 + static_cast<size_t>(rng.Uniform(0, 100)),
        /*threads=*/1 + static_cast<size_t>(rng.Uniform(0, 3)));

    ScalarExprPtr pred = RandomPredicate(&rng, arity, options);
    Relation vectorized = VectorizedFilter(view, pred, no_indexes, config);
    EXPECT_EQ(vectorized, FilterRelation(view, *pred))
        << "filter trial " << trial << ": " << pred->ToString();

    Relation other = GenRelation(&rng, 1 + rng.Uniform(0, 100), arity, 16, 16);
    RelationView ov(std::make_shared<Relation>(std::move(other)));
    ScalarExprPtr jpred =
        Eq(Col(rng.Uniform(0, arity - 1)),
           Col(arity + static_cast<size_t>(rng.Uniform(0, arity - 1))));
    if (rng.Uniform(0, 2) == 0) {
      jpred = And(jpred, RandomPredicate(&rng, 2 * arity, options));
    }
    Relation vjoin = VectorizedJoin(view, ov, jpred, no_indexes, config);
    EXPECT_EQ(vjoin, JoinRelations(view, ov, jpred))
        << "join trial " << trial << ": " << jpred->ToString();
  }
}

}  // namespace
}  // namespace hql
