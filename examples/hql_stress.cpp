// hql_stress: phased differential stress & chaos soak over the HQL engine.
//
// Every sampled op runs as a differential oracle across all six strategies
// under randomized mode combinations (columnar / incremental / index /
// memo), with optional chaos failpoints and randomized governor budgets.
// The invariant: bit-identical-or-clean-error, never crash or corrupt.
// Any violation is emitted as a self-contained JSON replay capsule that
// `hql_stress --replay <capsule>` reproduces deterministically.
//
// Examples:
//   hql_stress --seed=42 --ops=400 --chaos=0.02 --capsule-dir=/tmp
//   hql_stress --replay=/tmp/hql-capsule-op123-seed42-0.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/driver.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed=N          RNG seed for the whole run (default 1)\n"
      "  --ops=N           ops per phase, 5 phases (default 400)\n"
      "  --chaos=P         failpoint fire probability in the chaos phase\n"
      "                    (default 0.02; no-op in NDEBUG builds)\n"
      "  --max-seconds=S   wall-clock bound; stops issuing new ops\n"
      "  --capsule-dir=D   write replay capsules for failures into D\n"
      "  --no-shrink       skip greedy minimization of failing sequences\n"
      "  --keep-going      continue past the first failing op\n"
      "  --inject-failure  deliberately corrupt one result mid-run (tests\n"
      "                    the capsule pipeline end to end)\n"
      "  --replay=FILE     re-execute a replay capsule instead of soaking\n"
      "  --quiet           suppress per-phase progress\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  return false;
}

int RunReplay(const std::string& path) {
  hql::Result<hql::ReplayCapsule> capsule =
      hql::WorkloadDriver::LoadCapsuleFile(path);
  if (!capsule.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 capsule.status().ToString().c_str());
    return 2;
  }
  std::printf("capsule: seed=%llu ops=%zu failing-op=%d [%s] strategy=%s\n",
              static_cast<unsigned long long>(capsule.value().config.seed),
              capsule.value().included_ops.size(),
              capsule.value().failure.op_index,
              capsule.value().failure.kind.c_str(),
              capsule.value().failure.strategy.c_str());
  hql::Result<hql::ReplayOutcome> outcome =
      hql::WorkloadDriver::Replay(capsule.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", outcome.value().summary.c_str());
  if (outcome.value().reproduced) {
    std::printf("--- recorded failure ---\n%s\n",
                capsule.value().failure.ToString().c_str());
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int ops = 400;
  double chaos = 0.02;
  double max_seconds = 0.0;
  std::string capsule_dir;
  std::string replay_path;
  bool shrink = true;
  bool stop_on_failure = true;
  bool inject = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--seed", &v) && v != nullptr) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--ops", &v) && v != nullptr) {
      ops = std::atoi(v);
    } else if (ParseFlag(argv[i], "--chaos", &v) && v != nullptr) {
      chaos = std::atof(v);
    } else if (ParseFlag(argv[i], "--max-seconds", &v) && v != nullptr) {
      max_seconds = std::atof(v);
    } else if (ParseFlag(argv[i], "--capsule-dir", &v) && v != nullptr) {
      capsule_dir = v;
    } else if (ParseFlag(argv[i], "--replay", &v) && v != nullptr) {
      replay_path = v;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(argv[i], "--keep-going") == 0) {
      stop_on_failure = false;
    } else if (std::strcmp(argv[i], "--inject-failure") == 0) {
      inject = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  if (!replay_path.empty()) return RunReplay(replay_path);
  if (ops <= 0) {
    Usage(argv[0]);
    return 2;
  }

  hql::StressConfig config = hql::StressConfig::Mixed(seed, ops, chaos);
  if (inject) config.inject_mismatch_after = config.TotalOps() / 2;

  hql::DriverOptions options;
  options.shrink = shrink;
  options.stop_on_failure = stop_on_failure;
  options.max_seconds = max_seconds;
  options.capsule_dir = capsule_dir;
  if (!quiet) {
    options.on_phase = [](const hql::PhaseMetrics& m) {
      std::fprintf(stderr,
                   "phase %-16s ops=%-6d oracle-runs=%-8llu "
                   "clean-errors=%-6llu %.2fs\n",
                   m.label.c_str(), m.ops,
                   static_cast<unsigned long long>(m.oracle_runs),
                   static_cast<unsigned long long>(m.clean_errors),
                   m.seconds);
    };
  }

  hql::WorkloadDriver driver(config, options);
  hql::DriverResult result = driver.Run();

  std::printf(
      "ops=%d oracle-runs=%llu ok-runs=%llu clean-errors=%llu "
      "failures=%zu%s in %.2fs\n",
      result.report.ops_run,
      static_cast<unsigned long long>(result.report.oracle_runs),
      static_cast<unsigned long long>(result.report.ok_runs),
      static_cast<unsigned long long>(result.report.clean_errors),
      result.report.failures.size(),
      result.time_limited ? " (time-limited)" : "", result.seconds);

  for (size_t i = 0; i < result.capsules.size(); ++i) {
    std::printf("--- failure %zu ---\n%s\n", i,
                result.capsules[i].failure.ToString().c_str());
    std::printf("shrunk to %zu op(s)\n",
                result.capsules[i].included_ops.size());
    if (i < result.capsule_paths.size()) {
      std::printf("capsule: %s\n", result.capsule_paths[i].c_str());
    }
  }
  return result.ok() ? 0 : 1;
}
