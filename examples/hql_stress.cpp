// hql_stress: phased differential stress & chaos soak over the HQL engine.
//
// Every sampled op runs as a differential oracle across all six strategies
// under randomized mode combinations (columnar / incremental / index /
// memo), with optional chaos failpoints and randomized governor budgets.
// The invariant: bit-identical-or-clean-error, never crash or corrupt.
// Any violation is emitted as a self-contained JSON replay capsule that
// `hql_stress --replay <capsule>` reproduces deterministically.
//
// With --connect=PORT the same phased-mix idea runs over the wire instead:
// N concurrent sessions against a local hql_serve, each answer checked
// against a local Strategy::kDirect mirror (server/soak.h). The server
// must have been started with the matching --gen-seed/--gen-rows flags.
//
// Examples:
//   hql_stress --seed=42 --ops=400 --chaos=0.02 --capsule-dir=/tmp
//   hql_stress --replay=/tmp/hql-capsule-op123-seed42-0.json
//   hql_serve --port=7654 --gen-rows=64 --gen-seed=7 &
//   hql_stress --connect=7654 --sessions=32 --nodes=8 --gen-seed=7

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/soak.h"
#include "workload/driver.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed=N          RNG seed for the whole run (default 1)\n"
      "  --ops=N           ops per phase, 5 phases (default 400)\n"
      "  --chaos=P         failpoint fire probability in the chaos phase\n"
      "                    (default 0.02; no-op in NDEBUG builds)\n"
      "  --max-seconds=S   wall-clock bound; stops issuing new ops\n"
      "  --capsule-dir=D   write replay capsules for failures into D\n"
      "  --no-shrink       skip greedy minimization of failing sequences\n"
      "  --keep-going      continue past the first failing op\n"
      "  --inject-failure  deliberately corrupt one result mid-run (tests\n"
      "                    the capsule pipeline end to end)\n"
      "  --replay=FILE     re-execute a replay capsule instead of soaking\n"
      "  --json=FILE       write per-phase BENCH metrics (ops/s, p50/p99\n"
      "                    latency) in the bench_util --json schema\n"
      "  --quiet           suppress per-phase progress\n"
      "connected mode (replays the mix over the wire, differential against\n"
      "a local kDirect mirror):\n"
      "  --connect=PORT    drive hql_serve on 127.0.0.1:PORT\n"
      "  --sessions=N      concurrent wire sessions (default 8)\n"
      "  --nodes=N         scenario nodes per session (default 8)\n"
      "  --gen-seed=N      server base seed (default: --seed)\n"
      "  --gen-rows=N      server base rows per relation (default 64)\n"
      "  --gen-domain=N    server base value domain (default 64)\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  return false;
}

int RunNetMode(const hql::NetSoakConfig& config, const std::string& json) {
  hql::Result<hql::NetSoakReport> report = hql::RunNetSoak(config);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", report.value().Summary().c_str());
  if (!json.empty()) {
    hql::Status st =
        hql::WritePhaseMetricsJson(report.value().phases, "net_soak", json);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", json.c_str());
  }
  return report.value().ok() ? 0 : 1;
}

int RunReplay(const std::string& path) {
  hql::Result<hql::ReplayCapsule> capsule =
      hql::WorkloadDriver::LoadCapsuleFile(path);
  if (!capsule.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 capsule.status().ToString().c_str());
    return 2;
  }
  std::printf("capsule: seed=%llu ops=%zu failing-op=%d [%s] strategy=%s\n",
              static_cast<unsigned long long>(capsule.value().config.seed),
              capsule.value().included_ops.size(),
              capsule.value().failure.op_index,
              capsule.value().failure.kind.c_str(),
              capsule.value().failure.strategy.c_str());
  hql::Result<hql::ReplayOutcome> outcome =
      hql::WorkloadDriver::Replay(capsule.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", outcome.value().summary.c_str());
  if (outcome.value().reproduced) {
    std::printf("--- recorded failure ---\n%s\n",
                capsule.value().failure.ToString().c_str());
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int ops = 400;
  double chaos = 0.02;
  double max_seconds = 0.0;
  std::string capsule_dir;
  std::string replay_path;
  bool shrink = true;
  bool stop_on_failure = true;
  bool inject = false;
  bool quiet = false;
  std::string json_path;
  long connect_port = -1;
  bool net_seed_set = false;
  bool ops_set = false;
  hql::NetSoakConfig net;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--seed", &v) && v != nullptr) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--ops", &v) && v != nullptr) {
      ops = std::atoi(v);
      ops_set = true;
    } else if (ParseFlag(argv[i], "--chaos", &v) && v != nullptr) {
      chaos = std::atof(v);
    } else if (ParseFlag(argv[i], "--max-seconds", &v) && v != nullptr) {
      max_seconds = std::atof(v);
    } else if (ParseFlag(argv[i], "--capsule-dir", &v) && v != nullptr) {
      capsule_dir = v;
    } else if (ParseFlag(argv[i], "--replay", &v) && v != nullptr) {
      replay_path = v;
    } else if (ParseFlag(argv[i], "--json", &v) && v != nullptr) {
      json_path = v;
    } else if (ParseFlag(argv[i], "--connect", &v) && v != nullptr) {
      connect_port = std::atol(v);
    } else if (ParseFlag(argv[i], "--sessions", &v) && v != nullptr) {
      net.sessions = std::atoi(v);
    } else if (ParseFlag(argv[i], "--nodes", &v) && v != nullptr) {
      net.nodes_per_session = std::atoi(v);
    } else if (ParseFlag(argv[i], "--gen-seed", &v) && v != nullptr) {
      net.seed = std::strtoull(v, nullptr, 10);
      net_seed_set = true;
    } else if (ParseFlag(argv[i], "--gen-rows", &v) && v != nullptr) {
      net.gen_rows = static_cast<size_t>(std::atol(v));
    } else if (ParseFlag(argv[i], "--gen-domain", &v) && v != nullptr) {
      net.gen_domain = std::atol(v);
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(argv[i], "--keep-going") == 0) {
      stop_on_failure = false;
    } else if (std::strcmp(argv[i], "--inject-failure") == 0) {
      inject = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  if (!replay_path.empty()) return RunReplay(replay_path);
  if (connect_port >= 0) {
    if (connect_port == 0 || connect_port > 65535) {
      std::fprintf(stderr, "error: bad --connect port %ld\n", connect_port);
      return 2;
    }
    net.port = static_cast<uint16_t>(connect_port);
    if (!net_seed_set) net.seed = seed;
    if (ops_set && ops > 0) net.ops_per_phase = ops;
    return RunNetMode(net, json_path);
  }
  if (ops <= 0) {
    Usage(argv[0]);
    return 2;
  }

  hql::StressConfig config = hql::StressConfig::Mixed(seed, ops, chaos);
  if (inject) config.inject_mismatch_after = config.TotalOps() / 2;

  hql::DriverOptions options;
  options.shrink = shrink;
  options.stop_on_failure = stop_on_failure;
  options.max_seconds = max_seconds;
  options.capsule_dir = capsule_dir;
  if (!quiet) {
    options.on_phase = [](const hql::PhaseMetrics& m) {
      std::fprintf(stderr,
                   "phase %-16s ops=%-6d oracle-runs=%-8llu "
                   "clean-errors=%-6llu %.2fs\n",
                   m.label.c_str(), m.ops,
                   static_cast<unsigned long long>(m.oracle_runs),
                   static_cast<unsigned long long>(m.clean_errors),
                   m.seconds);
    };
  }

  hql::WorkloadDriver driver(config, options);
  hql::DriverResult result = driver.Run();

  std::printf(
      "ops=%d oracle-runs=%llu ok-runs=%llu clean-errors=%llu "
      "failures=%zu%s in %.2fs\n",
      result.report.ops_run,
      static_cast<unsigned long long>(result.report.oracle_runs),
      static_cast<unsigned long long>(result.report.ok_runs),
      static_cast<unsigned long long>(result.report.clean_errors),
      result.report.failures.size(),
      result.time_limited ? " (time-limited)" : "", result.seconds);

  if (!json_path.empty()) {
    hql::Status st =
        hql::WritePhaseMetricsJson(result.phases, "stress_soak", json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  for (size_t i = 0; i < result.capsules.size(); ++i) {
    std::printf("--- failure %zu ---\n%s\n", i,
                result.capsules[i].failure.ToString().c_str());
    std::printf("shrunk to %zu op(s)\n",
                result.capsules[i].included_ops.size());
    if (i < result.capsule_paths.size()) {
      std::printf("capsule: %s\n", result.capsule_paths[i].c_str());
    }
  }
  return result.ok() ? 0 : 1;
}
