// Version management over a tree of update alternatives (Example 2.1).
//
// A planning team explores a tree of proposed schedule changes. Each edge
// carries an hypothetical update; each node denotes the state reached by
// composing the updates on its root path. Queries against any node are
// ordinary HQL queries whose state is the # composition of the path — no
// version is ever materialized unless an eager strategy decides to.

#include <cstdio>
#include <string>
#include <vector>

#include "ast/builders.h"
#include "common/check.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/filter1.h"
#include "eval/ra_eval.h"
#include "eval/xsub.h"
#include "eval/materialize.h"
#include "eval/memo.h"
#include "hql/reduce.h"
#include "hql/subst.h"
#include "opt/planner.h"
#include "opt/session.h"
#include "workload/generators.h"
#include "workload/version_tree.h"

namespace {

template <typename T>
T Unwrap(hql::Result<T> result) {
  HQL_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace hql;       // NOLINT
  using namespace hql::dsl;  // NOLINT

  // shifts(worker_id, day) and oncall(worker_id, day).
  Schema schema;
  HQL_CHECK(schema.AddRelation("shifts", 2).ok());
  HQL_CHECK(schema.AddRelation("oncall", 2).ok());
  Rng rng(7);
  Database db(schema);
  HQL_CHECK(db.Set("shifts", GenRelation(&rng, 2000, 2, 400, 7)).ok());
  HQL_CHECK(db.Set("oncall", GenRelation(&rng, 200, 2, 400, 7)).ok());

  // The tree of alternatives:
  //           root
  //            |  freeze weekends
  //           v1
  //     +------+------+
  //     | hire temps  | move oncall to shifts
  //    v2a           v2b
  VersionTree tree;
  auto v1 = tree.AddChild(
      VersionTree::kRoot, "v1: freeze weekends",
      Upd(Del("shifts", Sel(Ge(Col(1), Int(5)), Rel("shifts")))));
  auto v2a = tree.AddChild(
      v1, "v2a: hire temps",
      Upd(Ins("shifts", Proj({0, 1}, X(Proj({0}, Rel("oncall")),
                                       Single({Value::Int(2)}))))));
  auto v2b = tree.AddChild(
      v1, "v2b: promote oncall",
      Upd(Seq(Ins("shifts", Rel("oncall")),
              Del("oncall", Rel("oncall")))));

  // Coverage on day 6 (a weekend day): workers with a shift that day.
  QueryPtr weekend_coverage =
      Proj({0}, Sel(Eq(Col(1), Int(6)), Rel("shifts")));

  std::printf("%-24s %s\n", "version", "weekend coverage (workers)");
  for (VersionTree::NodeId node = 0;
       node < static_cast<VersionTree::NodeId>(tree.size()); ++node) {
    Relation out = Unwrap(Execute(tree.QueryAt(node, weekend_coverage), db,
                                  schema, Strategy::kHybrid));
    std::printf("%-24s %zu\n", tree.label(node).c_str(), out.size());
  }

  // Comparing two alternatives below the same prefix (the paper's query Q):
  // workers covering weekends under v2b but not under v2a.
  QueryPtr compare = tree.CompareAt(v2b, v2a, weekend_coverage);
  Relation diff = Unwrap(Execute(compare, db, schema, Strategy::kHybrid));
  std::printf("\nWorkers covering weekends only under v2b: %zu\n",
              diff.size());

  // Family-of-queries optimization (Example 2.2): materialize v2b's state
  // once and filter many per-day queries through it.
  XsubValue env = Unwrap(MaterializeXsub(tree.PathState(v2b), db, schema));
  std::printf("\nPer-day coverage at v2b (one materialized xsub-value, %llu "
              "tuples):\n",
              static_cast<unsigned long long>(env.TotalTuples()));
  Filter1Options options;
  options.env = &env;
  for (int day = 0; day < 7; ++day) {
    QueryPtr per_day = Proj({0}, Sel(Eq(Col(1), Int(day)), Rel("shifts")));
    Relation out = Unwrap(RunFilter1(per_day, db, options));
    std::printf("  day %d: %zu workers\n", day, out.size());
  }

  // Family-of-alternatives optimization: every version of the tree answered
  // in one batched call. The thread pool fans the versions out and the
  // shared memo cache evaluates the common v1 prefix once for the whole
  // family instead of once per version. (A weekday query: the weekend
  // freeze does not simplify it away, so the versions genuinely share the
  // rewritten v1 subplans.)
  QueryPtr midweek_coverage =
      Proj({0}, Sel(Eq(Col(1), Int(3)), Rel("shifts")));
  std::vector<HypoExprPtr> states;
  for (VersionTree::NodeId node = 0;
       node < static_cast<VersionTree::NodeId>(tree.size()); ++node) {
    states.push_back(tree.PathState(node));  // nullptr at the root
  }
  MemoCache memo;
  AlternativesOptions alt_options;
  alt_options.strategy = Strategy::kLazy;
  alt_options.planner.memo = &memo;
  std::vector<Relation> family = Unwrap(
      EvalAlternatives(midweek_coverage, states, db, schema, alt_options));
  std::printf("\nBatched EvalAlternatives over all %zu versions:\n",
              family.size());
  for (size_t i = 0; i < family.size(); ++i) {
    std::printf("  %-24s %zu workers\n", tree.label(static_cast<int>(i)).c_str(),
                family[i].size());
  }
  MemoCache::Stats stats = memo.stats();
  std::printf("  memo: %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              100.0 * stats.HitRate());
  return 0;
}
