// What-if decision support: compare promotion scenarios on a sales
// database without ever committing an update.
//
// The retailer considers two mutually exclusive promotions and wants the
// projected high-value order volume under each. Every scenario is a
// hypothetical state; the comparison query asks for orders that would be
// high-value under scenario A but not under scenario B — an instance of
// the paper's Example 2.1 "queries using alternatives".

#include <cstdio>

#include "ast/builders.h"
#include "common/check.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "hql/reduce.h"
#include "opt/planner.h"
#include "storage/database.h"
#include "workload/generators.h"

namespace {

template <typename T>
T Unwrap(hql::Result<T> result) {
  HQL_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace hql;       // NOLINT
  using namespace hql::dsl;  // NOLINT

  // orders(product_id, amount) and catalog(product_id, price_tier).
  Schema schema;
  HQL_CHECK(schema.AddRelation("orders", 2).ok());
  HQL_CHECK(schema.AddRelation("catalog", 2).ok());

  Rng rng(2026);
  Database db(schema);
  HQL_CHECK(db.Set("orders", GenRelation(&rng, 5000, 2, 800, 100)).ok());
  HQL_CHECK(db.Set("catalog", GenRelation(&rng, 800, 2, 800, 5)).ok());
  std::printf("Loaded %zu orders over %zu catalog entries.\n\n",
              db.GetRef("orders").size(), db.GetRef("catalog").size());

  // Promotion A: every product in price tier >= 3 gains a synthetic
  // high-volume order (amount 95).
  UpdatePtr promo_a = Ins(
      "orders", Proj({0, 1}, X(Proj({0}, Sel(Ge(Col(1), Int(3)),
                                             Rel("catalog"))),
                               Single({Value::Int(95)}))));
  // Promotion B: low-tier products gain the orders instead, and stale
  // low-amount orders are cleared out.
  UpdatePtr promo_b =
      Seq(Ins("orders", Proj({0, 1}, X(Proj({0}, Sel(Lt(Col(1), Int(3)),
                                                     Rel("catalog"))),
                                       Single({Value::Int(95)})))),
          Del("orders", Sel(Lt(Col(1), Int(5)), Rel("orders"))));

  // High-value order volume: orders with amount >= 90 joined to catalog.
  QueryPtr high_value =
      Proj({0}, Sel(Ge(Col(1), Int(90)),
                    Join(Eq(Col(0), Col(2)), Rel("orders"),
                         Rel("catalog"))));

  // Products that become high-value under A but not under B.
  QueryPtr a_not_b = Diff(Query::When(high_value, Upd(promo_a)),
                          Query::When(high_value, Upd(promo_b)));
  // And the other direction.
  QueryPtr b_not_a = Diff(Query::When(high_value, Upd(promo_b)),
                          Query::When(high_value, Upd(promo_a)));

  Relation only_a = Unwrap(Execute(a_not_b, db, schema, Strategy::kHybrid));
  Relation only_b = Unwrap(Execute(b_not_a, db, schema, Strategy::kHybrid));
  std::printf("Products high-value only under promotion A: %zu\n",
              only_a.size());
  std::printf("Products high-value only under promotion B: %zu\n\n",
              only_b.size());

  // The lazy rewrite shows what the comparison *is* in pure relational
  // algebra — auditable without evaluating anything.
  QueryPtr reduced = Unwrap(Reduce(a_not_b, schema));
  std::printf("Lazy rewrite of the A-not-B comparison (%zu characters of "
              "pure RA):\n", reduced->ToString().size());
  std::printf("  %.200s...\n\n", reduced->ToString().c_str());

  // Every strategy gives the same counts (Propositions 5.1/5.3/5.4).
  for (Strategy s : {Strategy::kDirect, Strategy::kLazy, Strategy::kFilter1,
                     Strategy::kFilter2, Strategy::kFilter3}) {
    auto result = Execute(a_not_b, db, schema, s);
    if (result.ok()) {
      std::printf("  %-8s -> %zu products\n", StrategyName(s),
                  result.value().size());
      HQL_CHECK(result.value() == only_a);
    } else {
      std::printf("  %-8s -> (%s)\n", StrategyName(s),
                  result.status().ToString().c_str());
    }
  }

  // Nothing was ever committed.
  std::printf("\nOrders table still has %zu rows; no update was applied.\n",
              db.GetRef("orders").size());
  return 0;
}
