// hql_serve: the concurrent hypothetical-state server.
//
// Serves the line/JSON wire protocol (src/server/wire.h) over loopback
// TCP: every connection gets its own hql::Session — a private, named tree
// of hypothetical states over a snapshot of the shared base — while the
// engine's caches (memo, index advisor, incremental) are shared by all.
//
//   hql_serve --port=7654 --profile=fast &
//   printf 'derive root hire {ins(A2, {(4, 20)})}\nquery hire A2\nquit\n' |
//     nc 127.0.0.1 7654
//
// The base database comes from --db=FILE (storage/io.h text format) or
// --gen-rows/--gen-seed (the property-test generator's random database,
// handy for driving it with hql_stress --connect).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "server/server.h"
#include "storage/io.h"
#include "workload/generators.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port=N] [--db=FILE | --gen-rows=N] [--gen-seed=N]\n"
      "          [--gen-domain=N] [--profile=NAME] [--set KNOB=VALUE]...\n"
      "          [--max-sessions=N] [--once]\n"
      "\n"
      "  --port=N          TCP port to bind on 127.0.0.1 (default: "
      "ephemeral,\n"
      "                    printed on startup)\n"
      "  --db=FILE         load the base database from FILE (storage/io.h)\n"
      "  --gen-rows=N      generate a random base over the property-test\n"
      "                    schema with up to N rows per relation\n"
      "  --gen-seed=N      seed for --gen-rows (default 1)\n"
      "  --gen-domain=N    value domain for --gen-rows (default 64)\n"
      "  --profile=NAME    engine profile: default|fast|safe|all-on\n"
      "  --set KNOB=VALUE  set one engine knob (repeatable; see \\set)\n"
      "  --max-sessions=N  admission cap on concurrent sessions\n"
      "  --once            exit after the first connection closes (smoke\n"
      "                    tests)\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  return false;
}

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const char* db_path = nullptr;
  long gen_rows = 0;
  long gen_seed = 1;
  long gen_domain = 64;
  long port = 0;
  bool once = false;
  hql::EngineOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--port", &v) && v != nullptr) {
      port = std::atol(v);
    } else if (ParseFlag(argv[i], "--db", &v) && v != nullptr) {
      db_path = v;
    } else if (ParseFlag(argv[i], "--gen-rows", &v) && v != nullptr) {
      gen_rows = std::atol(v);
    } else if (ParseFlag(argv[i], "--gen-seed", &v) && v != nullptr) {
      gen_seed = std::atol(v);
    } else if (ParseFlag(argv[i], "--gen-domain", &v) && v != nullptr) {
      gen_domain = std::atol(v);
    } else if (ParseFlag(argv[i], "--profile", &v) && v != nullptr) {
      hql::Status st = options.Set("profile", v);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--set") == 0 && i + 1 < argc) {
      std::string kv = argv[++i];
      size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "error: --set wants KNOB=VALUE, got '%s'\n",
                     kv.c_str());
        return 2;
      }
      hql::Status st = options.Set(kv.substr(0, eq), kv.substr(eq + 1));
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--max-sessions", &v) && v != nullptr) {
      options.max_sessions = static_cast<size_t>(std::atol(v));
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port %ld\n", port);
    return 2;
  }

  hql::Schema schema = hql::PropertySchema();
  hql::Database base(schema);
  if (db_path != nullptr) {
    hql::Result<hql::Database> loaded = hql::LoadDatabase(db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    base = std::move(loaded).value();
  } else if (gen_rows > 0) {
    hql::Rng rng(static_cast<uint64_t>(gen_seed));
    base = hql::RandomDatabase(&rng, schema, static_cast<size_t>(gen_rows),
                               gen_domain);
  }

  hql::Engine engine(std::move(base), options);
  hql::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(port);
  hql::HqlServer server(&engine, server_options);
  hql::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("hql_serve: listening on 127.0.0.1:%u (%s)\n",
              static_cast<unsigned>(server.port()),
              options.Describe().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  bool saw_connection = false;
  while (g_stop == 0) {
    struct timespec ts = {0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
    if (once) {
      if (server.total_connections() > 0) saw_connection = true;
      if (saw_connection && server.active_connections() == 0) break;
    }
  }
  server.Stop();
  std::printf("hql_serve: served %llu connections, %llu requests\n",
              static_cast<unsigned long long>(server.total_connections()),
              static_cast<unsigned long long>(server.total_requests()));
  return 0;
}
