// Quickstart: a guided tour of the hql public API.
//
//   $ ./examples/quickstart
//
// Covers: declaring a schema, loading a database state, writing queries
// (both with the C++ DSL and the textual parser), hypothetical queries with
// `when`, the substitution machinery (slice / reduce), and the evaluation
// strategy spectrum.

#include <cstdio>
#include <string>

#include "ast/builders.h"
#include "ast/typecheck.h"
#include "common/check.h"
#include "eval/direct.h"
#include "hql/reduce.h"
#include "hql/subst.h"
#include "opt/planner.h"
#include "parser/parser.h"
#include "storage/database.h"

namespace {

template <typename T>
T Unwrap(hql::Result<T> result) {
  HQL_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace hql;        // NOLINT
  using namespace hql::dsl;   // NOLINT

  // -------------------------------------------------------------------
  // 1. Schema and database state.
  // -------------------------------------------------------------------
  // emp(id, dept_id) and dept(dept_id, budget).
  Schema schema;
  HQL_CHECK(schema.AddRelation("emp", 2).ok());
  HQL_CHECK(schema.AddRelation("dept", 2).ok());

  Database db(schema);
  HQL_CHECK(db.Set("emp", Relation::FromTuples(
                              2, {{Value::Int(1), Value::Int(10)},
                                  {Value::Int(2), Value::Int(10)},
                                  {Value::Int(3), Value::Int(20)}}))
                .ok());
  HQL_CHECK(db.Set("dept", Relation::FromTuples(
                               2, {{Value::Int(10), Value::Int(500)},
                                   {Value::Int(20), Value::Int(900)}}))
                .ok());
  std::printf("Database state:\n%s\n", db.ToString().c_str());

  // -------------------------------------------------------------------
  // 2. A plain relational-algebra query, built with the DSL.
  //    Employees of departments with budget >= 600:
  //    pi[0](emp join[dept_id = dept_id] sigma[budget >= 600](dept)).
  // -------------------------------------------------------------------
  QueryPtr rich = Proj({0}, Join(Eq(Col(1), Col(2)), Rel("emp"),
                                 Sel(Ge(Col(1), Int(600)), Rel("dept"))));
  std::printf("Query: %s\n", rich->ToString().c_str());
  std::printf("Arity: %zu\n", Unwrap(InferQueryArity(rich, schema)));
  std::printf("Value: %s\n\n", Unwrap(EvalDirect(rich, db)).ToString().c_str());

  // -------------------------------------------------------------------
  // 3. The same query written in the textual syntax.
  // -------------------------------------------------------------------
  QueryPtr parsed = Unwrap(ParseQuery(
      "pi[0](emp join[$1 = $2] sigma[$1 >= 600](dept))"));
  HQL_CHECK(parsed->Equals(*rich));
  std::printf("Parsed form round-trips: %s\n\n", parsed->ToString().c_str());

  // -------------------------------------------------------------------
  // 4. A hypothetical query: what would the answer be *if* department 10
  //    received a 200-unit budget increase? `when {U}` never mutates db.
  // -------------------------------------------------------------------
  QueryPtr whatif = Unwrap(ParseQuery(
      "pi[0](emp join[$1 = $2] sigma[$1 >= 600](dept)) when "
      "{del(dept, {(10, 500)}); ins(dept, {(10, 700)})}"));
  std::printf("Hypothetical query:\n  %s\n", whatif->ToString().c_str());
  std::printf("Hypothetical value: %s\n",
              Unwrap(EvalDirect(whatif, db)).ToString().c_str());
  std::printf("Real state unchanged: dept = %s\n\n",
              db.GetRef("dept").ToString().c_str());

  // -------------------------------------------------------------------
  // 5. The substitution view (the paper's core idea): `when {U}` is the
  //    suspended application of the substitution slice(U), and reduce()
  //    rewrites the hypothetical query to plain relational algebra.
  // -------------------------------------------------------------------
  QueryPtr reduced = Unwrap(Reduce(whatif, schema));
  std::printf("Fully lazy rewrite (Theorem 4.1):\n  %s\n",
              reduced->ToString().c_str());
  std::printf("Same value: %s\n\n",
              Unwrap(EvalDirect(reduced, db)).ToString().c_str());

  // -------------------------------------------------------------------
  // 6. The whole strategy spectrum computes the same answer.
  // -------------------------------------------------------------------
  for (Strategy s : {Strategy::kDirect, Strategy::kLazy, Strategy::kFilter1,
                     Strategy::kFilter2, Strategy::kFilter3,
                     Strategy::kHybrid}) {
    Relation out = Unwrap(Execute(whatif, db, schema, s));
    std::printf("  %-8s -> %s\n", StrategyName(s), out.ToString().c_str());
  }
  std::printf("\nAll strategies agree. Done.\n");
  return 0;
}
