// Integrity maintenance with hypothetical queries.
//
// A constraint is a "violations" query that must stay empty. Before
// committing a proposed update U, the guard evaluates
//
//     violations when {U}
//
// against the current state: if the result is empty the update is safe.
// This is the weakest-precondition connection the paper draws in the
// related-work discussion — `a when {U}` *is* the precondition of `a`
// under U, and the lazy strategy turns it into a plain RA query that a
// conventional engine could evaluate before the update ever runs.

#include <cstdio>
#include <vector>

#include "ast/builders.h"
#include "common/check.h"
#include "eval/direct.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "parser/parser.h"
#include "storage/database.h"

namespace {

template <typename T>
T Unwrap(hql::Result<T> result) {
  HQL_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace hql;       // NOLINT
  using namespace hql::dsl;  // NOLINT

  // accounts(id, balance_class) and frozen(id).
  // balance_class 0 means overdrawn.
  Schema schema;
  HQL_CHECK(schema.AddRelation("accounts", 2).ok());
  HQL_CHECK(schema.AddRelation("frozen", 1).ok());

  Database db(schema);
  HQL_CHECK(db.Set("accounts", Relation::FromTuples(
                                   2, {{Value::Int(1), Value::Int(3)},
                                       {Value::Int(2), Value::Int(1)},
                                       {Value::Int(3), Value::Int(2)}}))
                .ok());
  HQL_CHECK(
      db.Set("frozen", Relation::FromTuples(1, {{Value::Int(2)}})).ok());

  // Constraint: no overdrawn account may be unfrozen.
  // violations = pi[0](sigma[class = 0](accounts)) - frozen.
  QueryPtr violations = Unwrap(ParseQuery(
      "pi[0](sigma[$1 = 0](accounts)) - frozen"));
  std::printf("Constraint (must stay empty): %s\n\n",
              violations->ToString().c_str());

  struct Proposal {
    const char* description;
    const char* update_text;
  };
  std::vector<Proposal> proposals = {
      {"overdraw account 1 (it is not frozen)",
       "del(accounts, {(1, 3)}); ins(accounts, {(1, 0)})"},
      {"overdraw account 2 (it is frozen)",
       "del(accounts, {(2, 1)}); ins(accounts, {(2, 0)})"},
      {"unfreeze account 2",
       "del(frozen, {(2)})"},
      {"overdraw account 3 but freeze it in the same transaction",
       "del(accounts, {(3, 2)}); ins(accounts, {(3, 0)}); "
       "ins(frozen, {(3)})"},
      {"conditionally unfreeze 2 only if it is not overdrawn",
       "if pi[0](sigma[$0 = 2 and $1 = 0](accounts)) "
       "then {ins(frozen, {(2)})} else {del(frozen, {(2)})}"},
  };

  for (const Proposal& p : proposals) {
    UpdatePtr update = Unwrap(ParseUpdate(p.update_text));
    QueryPtr guard = Query::When(violations, Upd(update));

    // The lazy rewrite is the weakest precondition as a plain RA query.
    QueryPtr precondition =
        Unwrap(SimplifyRa(Unwrap(Reduce(guard, schema)), schema));

    Relation would_violate = Unwrap(EvalDirect(guard, db));
    std::printf("Proposal: %s\n", p.description);
    std::printf("  precondition query: %.120s\n",
                precondition->ToString().c_str());
    if (would_violate.empty()) {
      std::printf("  verdict: SAFE — committing.\n");
      db = Unwrap(ExecUpdate(update, db));
    } else {
      std::printf("  verdict: REJECTED — would create violations %s\n",
                  would_violate.ToString().c_str());
    }
    std::printf("\n");
  }

  std::printf("Final state:\n%s", db.ToString().c_str());
  Relation current = Unwrap(EvalDirect(violations, db));
  HQL_CHECK(current.empty());
  std::printf("Constraint holds after all committed updates.\n");
  return 0;
}
