// hql_shell: an interactive REPL over the hql::Engine / hql::Session
// facade — the same API the network server (hql_serve) and the stress
// driver's --connect mode sit on.
//
//   $ ./examples/hql_shell
//   hql> \schema emp 2
//   hql> \gen emp 1000 500
//   hql> \derive root layoffs {del(emp, sigma[$0 < 100](emp))}
//   hql> \at layoffs
//   hql> gamma[1; count(0)](emp)
//   ...
//
// Commands:
//   \schema NAME ARITY      declare a relation
//   \load NAME (v,..) ...   insert literal rows
//   \gen NAME ROWS DOMAIN   fill with random int rows (col 0 in [0,DOMAIN))
//   \apply UPDATE           commit an update to the real state
//   \derive PARENT CHILD {UPD; ...}   add a scenario below PARENT
//   \edit NODE {UPD; ...}   replace NODE's hypothetical edge
//   \drop NODE              drop NODE and its subtree
//   \nodes                  list the scenario tree
//   \at [NODE]              run subsequent queries at NODE (default root)
//   \compare A B QUERY      (QUERY at A) - (QUERY at B)
//   \set [KNOB VALUE]       engine knob by name; bare \set lists them all
//   \profile NAME           load a named profile: fast | safe | all-on
//   \strategy NAME          shorthand for \set strategy NAME
//   \columnar on|off        shorthand for \set columnar auto|off
//   \incremental on|off     shorthand for \set incremental auto|off
//   \explain QUERY          show the lazy rewrite and the hybrid plan
//   \analyze QUERY          EXPLAIN ANALYZE at the current node
//   \stats                  this session's accumulated ExecStats (JSON)
//   \db [NODE]              print the base (or NODE's hypothetical state)
//   \save FILE  \open FILE  persist / restore the database
//   \whatif STATE           open a what-if scenario (queries run there);
//                           \endwhatif returns to the previous node
//   \time on|off            toggle per-query timing
//   \help, \quit
// Anything else is parsed as an HQL query and evaluated at the current
// scenario node ("Q when {...}" still works anywhere).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ast/typecheck.h"
#include "common/rng.h"
#include "eval/simd.h"
#include "opt/engine.h"
#include "opt/explain.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "storage/io.h"
#include "workload/generators.h"

namespace {

using namespace hql;  // NOLINT

struct ShellState {
  Engine engine{Schema()};
  SessionPtr session;
  std::string current = "root";  // node queries run at (\at)
  std::string whatif_return;     // node to restore on \endwhatif
  bool timing = true;
  Rng rng{20260704};

  ShellState() { session = engine.CreateSession("shell").value(); }

  // The engine's base (or schema) changed: re-open the session so the
  // snapshot tracks the committed state, dropping any scenario tree.
  void ReopenSession() {
    session.reset();  // release the admission slot first
    session = engine.CreateSession("shell").value();
    current = "root";
    whatif_return.clear();
  }
};

void PrintRelation(const Relation& r, size_t limit = 20) {
  size_t shown = 0;
  for (const Tuple& t : r) {
    if (shown++ >= limit) {
      std::printf("  ... (%zu more)\n", r.size() - limit);
      break;
    }
    std::printf("  %s\n", TupleToString(t).c_str());
  }
  std::printf("(%zu tuple%s)\n", r.size(), r.size() == 1 ? "" : "s");
}

void Help() {
  std::printf(
      "commands:\n"
      "  \\schema NAME ARITY      declare a relation\n"
      "  \\load NAME (v,..) ...   insert literal rows\n"
      "  \\gen NAME ROWS DOMAIN   fill with random rows\n"
      "  \\apply UPDATE           commit an update\n"
      "  \\derive PARENT CHILD {UPD; ...}   add a scenario\n"
      "  \\edit NODE {UPD; ...}   replace a scenario's edge\n"
      "  \\drop NODE              drop a scenario subtree\n"
      "  \\nodes                  list the scenario tree\n"
      "  \\at [NODE]              query at NODE (default root)\n"
      "  \\compare A B QUERY      (QUERY at A) - (QUERY at B)\n"
      "  \\set [KNOB VALUE]       tune one engine knob; bare \\set lists\n"
      "  \\profile NAME           fast | safe | all-on\n"
      "  \\strategy NAME          direct|lazy|filter1|filter2|filter3|hybrid\n"
      "  \\columnar on|off        vectorized kernels for large flat bases\n"
      "  \\incremental on|off     patch cached results under small edits\n"
      "  \\explain QUERY          show rewrites and plan\n"
      "  \\analyze QUERY          run traced at the current node\n"
      "  \\stats                  session ExecStats as JSON\n"
      "  \\db [NODE]              print the base or a scenario state\n"
      "  \\save FILE  \\open FILE  persist / restore the database\n"
      "  \\whatif STATE           what-if scenario; \\endwhatif to close\n"
      "  \\time on|off            toggle timing\n"
      "  \\help  \\quit\n"
      "anything else: an HQL query, e.g.\n"
      "  sigma[$0 > 3](R) when {ins(R, S); del(S, R)}\n");
}

/// Parses the trailing "{...}" of a scenario command as a hypothetical
/// state and type-checks it against the engine schema.
Result<HypoExprPtr> ParseEdge(const ShellState& st, const std::string& text) {
  auto edge = ParseHypo(text);
  if (!edge.ok()) return edge.status();
  Status check = CheckHypo(edge.value(), st.engine.schema());
  if (!check.ok()) return check;
  return edge;
}

void HandleCommand(ShellState* st, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "\\help") {
    Help();
  } else if (cmd == "\\schema") {
    std::string name;
    size_t arity = 0;
    in >> name >> arity;
    if (name.empty() || arity == 0) {
      std::printf("usage: \\schema NAME ARITY\n");
      return;
    }
    Status declared = st->engine.DeclareRelation(name, arity);
    if (!declared.ok()) {
      std::printf("error: %s\n", declared.ToString().c_str());
      return;
    }
    st->ReopenSession();
    std::printf("ok: %s/%zu\n", name.c_str(), arity);
  } else if (cmd == "\\gen") {
    std::string name;
    size_t rows = 0;
    int64_t domain = 0;
    in >> name >> rows >> domain;
    auto arity = st->engine.schema().ArityOf(name);
    if (!arity.ok() || rows == 0 || domain <= 0) {
      std::printf("usage: \\gen NAME ROWS DOMAIN (declared relation)\n");
      return;
    }
    Status set = st->engine.SetRelation(
        name, GenRelation(&st->rng, rows, arity.value(), domain, domain));
    if (set.ok()) st->ReopenSession();
    std::printf("%s\n", set.ok() ? "ok" : set.ToString().c_str());
  } else if (cmd == "\\load") {
    std::string name;
    in >> name;
    std::string rest;
    std::getline(in, rest);
    // Reuse the query parser: each "(v, ..)" is a singleton.
    std::vector<std::string> tuples;
    std::string cur;
    for (char c : rest) {
      cur.push_back(c);
      if (c == ')') {
        tuples.push_back(cur);
        cur.clear();
      }
    }
    if (tuples.empty()) {
      std::printf("usage: \\load NAME (v, ..) (v, ..) ...\n");
      return;
    }
    auto base = st->engine.Snapshot().Get(name);
    if (!base.ok()) {
      std::printf("error: %s\n", base.status().ToString().c_str());
      return;
    }
    Relation rel = base.value();
    for (const std::string& text : tuples) {
      auto q = ParseQuery("{" + text + "}");
      if (!q.ok() || q.value()->kind() != QueryKind::kSingleton ||
          q.value()->tuple().size() != rel.arity()) {
        std::printf("bad tuple: %s\n", text.c_str());
        return;
      }
      rel.Insert(q.value()->tuple());
    }
    Status set = st->engine.SetRelation(name, std::move(rel));
    if (set.ok()) st->ReopenSession();
    std::printf("%s\n", set.ok() ? "ok" : set.ToString().c_str());
  } else if (cmd == "\\apply") {
    std::string rest;
    std::getline(in, rest);
    auto u = ParseUpdate(rest);
    if (!u.ok()) {
      std::printf("parse error: %s\n", u.status().ToString().c_str());
      return;
    }
    Status applied = st->engine.Apply(u.value());
    if (!applied.ok()) {
      std::printf("error: %s\n", applied.ToString().c_str());
      return;
    }
    st->ReopenSession();
    std::printf("ok\n");
  } else if (cmd == "\\derive") {
    std::string parent, child;
    in >> parent >> child;
    std::string rest;
    std::getline(in, rest);
    if (parent.empty() || child.empty()) {
      std::printf("usage: \\derive PARENT CHILD {UPD; ...}\n");
      return;
    }
    auto edge = ParseEdge(*st, rest);
    if (!edge.ok()) {
      std::printf("error: %s\n", edge.status().ToString().c_str());
      return;
    }
    Status derived = st->session->Derive(parent, child, edge.value());
    std::printf("%s\n", derived.ok() ? "ok" : derived.ToString().c_str());
  } else if (cmd == "\\edit") {
    std::string node;
    in >> node;
    std::string rest;
    std::getline(in, rest);
    if (node.empty()) {
      std::printf("usage: \\edit NODE {UPD; ...}\n");
      return;
    }
    auto edge = ParseEdge(*st, rest);
    if (!edge.ok()) {
      std::printf("error: %s\n", edge.status().ToString().c_str());
      return;
    }
    Status edited = st->session->Edit(node, edge.value());
    std::printf("%s\n", edited.ok() ? "ok" : edited.ToString().c_str());
  } else if (cmd == "\\drop") {
    std::string node;
    in >> node;
    Status dropped = st->session->Drop(node);
    if (dropped.ok() && st->current == node) st->current = "root";
    std::printf("%s\n", dropped.ok() ? "ok" : dropped.ToString().c_str());
  } else if (cmd == "\\nodes") {
    for (const ScenarioInfo& info : st->session->Nodes()) {
      std::printf("  %s%s%s%s%s\n", info.name.c_str(),
                  info.parent.empty() ? "" : " <- ", info.parent.c_str(),
                  info.materialized ? " [materialized]" : "",
                  info.name == st->current ? " *" : "");
    }
  } else if (cmd == "\\at") {
    std::string node;
    in >> node;
    if (node.empty()) node = "root";
    // Probe the node by materializing its state.
    auto state = st->session->StateAt(node);
    if (!state.ok()) {
      std::printf("error: %s\n", state.status().ToString().c_str());
      return;
    }
    st->current = node;
    std::printf("queries now run at '%s'\n", node.c_str());
  } else if (cmd == "\\compare") {
    std::string a, b;
    in >> a >> b;
    std::string rest;
    std::getline(in, rest);
    auto q = ParseQuery(rest);
    if (a.empty() || b.empty() || !q.ok()) {
      std::printf("usage: \\compare A B QUERY\n");
      return;
    }
    auto diff = st->session->Compare(a, b, q.value());
    if (!diff.ok()) {
      std::printf("error: %s\n", diff.status().ToString().c_str());
      return;
    }
    PrintRelation(diff.value());
  } else if (cmd == "\\set") {
    std::string knob, value;
    in >> knob >> value;
    if (knob.empty()) {
      std::printf("%s\n", st->session->options().Describe().c_str());
      return;
    }
    Status set = st->session->Set(knob, value);
    std::printf("%s\n", set.ok() ? "ok" : set.ToString().c_str());
  } else if (cmd == "\\profile") {
    std::string name;
    in >> name;
    Status set = st->session->SetProfile(name);
    if (!set.ok()) {
      std::printf("error: %s\n", set.ToString().c_str());
      return;
    }
    std::printf("profile %s: %s\n", name.c_str(),
                st->session->options().Describe().c_str());
  } else if (cmd == "\\strategy") {
    std::string name;
    in >> name;
    Status set = st->session->Set("strategy", name);
    if (!set.ok()) {
      std::printf("%s\n", set.ToString().c_str());
      return;
    }
    std::printf("strategy = %s\n", name.c_str());
  } else if (cmd == "\\columnar") {
    std::string mode;
    in >> mode;
    if (mode != "on" && mode != "off") {
      std::printf("usage: \\columnar on|off\n");
      return;
    }
    Status set = st->session->Set("columnar", mode == "on" ? "auto" : "off");
    if (!set.ok()) {
      std::printf("error: %s\n", set.ToString().c_str());
      return;
    }
    std::printf("columnar = %s (simd: %s)\n", mode.c_str(), SimdIsaName());
  } else if (cmd == "\\incremental") {
    std::string mode;
    in >> mode;
    if (mode != "on" && mode != "off") {
      std::printf("usage: \\incremental on|off\n");
      return;
    }
    Status set =
        st->session->Set("incremental", mode == "on" ? "auto" : "off");
    if (!set.ok()) {
      std::printf("error: %s\n", set.ToString().c_str());
      return;
    }
    std::printf("incremental = %s\n", mode.c_str());
  } else if (cmd == "\\explain") {
    std::string rest;
    std::getline(in, rest);
    auto q = ParseQuery(rest);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    StatsCatalog stats =
        StatsCatalog::FromDatabase(st->session->BaseSnapshot());
    PlannerOptions planner = st->session->PlannerConfig();
    auto report = Explain(q.value(), st->engine.schema(), stats, planner.memo);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatExplain(report.value()).c_str());
  } else if (cmd == "\\analyze") {
    std::string rest;
    std::getline(in, rest);
    auto q = ParseQuery(rest);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    auto report = st->session->Analyze(st->current, q.value());
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatExplainAnalyze(report.value()).c_str());
  } else if (cmd == "\\stats") {
    std::printf("%s\n", st->session->Stats().ToJson().c_str());
  } else if (cmd == "\\save") {
    std::string path;
    in >> path;
    Status saved = SaveDatabase(st->engine.Snapshot(), path);
    std::printf("%s\n", saved.ok() ? "ok" : saved.ToString().c_str());
  } else if (cmd == "\\open") {
    std::string path;
    in >> path;
    auto loaded = LoadDatabase(path);
    if (!loaded.ok()) {
      std::printf("error: %s\n", loaded.status().ToString().c_str());
      return;
    }
    st->engine.ResetDatabase(std::move(loaded).value());
    st->ReopenSession();
    std::printf("ok (%zu relations)\n", st->engine.schema().NumRelations());
  } else if (cmd == "\\whatif") {
    std::string rest;
    std::getline(in, rest);
    auto edge = ParseEdge(*st, rest);
    if (!edge.ok()) {
      std::printf("error: %s\n", edge.status().ToString().c_str());
      return;
    }
    st->session->Drop("whatif");  // stale one from a previous \whatif
    Status derived =
        st->session->Derive(st->current, "whatif", edge.value());
    if (!derived.ok()) {
      std::printf("error: %s\n", derived.ToString().c_str());
      return;
    }
    st->whatif_return = st->current;
    st->current = "whatif";
    std::printf("what-if scenario open below '%s'; queries now run there. "
                "\\endwhatif to close.\n",
                st->whatif_return.c_str());
  } else if (cmd == "\\endwhatif") {
    if (st->whatif_return.empty()) {
      std::printf("no what-if scenario open\n");
      return;
    }
    st->session->Drop("whatif");
    st->current = st->whatif_return;
    st->whatif_return.clear();
    std::printf("what-if closed; back at '%s'.\n", st->current.c_str());
  } else if (cmd == "\\db") {
    std::string node;
    in >> node;
    if (node.empty()) {
      std::printf("%s", st->engine.Snapshot().ToString().c_str());
      return;
    }
    auto state = st->session->StateAt(node);
    if (!state.ok()) {
      std::printf("error: %s\n", state.status().ToString().c_str());
      return;
    }
    std::printf("%s", state.value().ToString().c_str());
  } else if (cmd == "\\time") {
    std::string mode;
    in >> mode;
    st->timing = (mode != "off");
    std::printf("timing %s\n", st->timing ? "on" : "off");
  } else {
    std::printf("unknown command %s (try \\help)\n", cmd.c_str());
  }
}

void HandleQuery(ShellState* st, const std::string& line) {
  auto q = ParseQuery(line);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return;
  }
  auto arity = InferQueryArity(q.value(), st->engine.schema());
  if (!arity.ok()) {
    std::printf("type error: %s\n", arity.status().ToString().c_str());
    return;
  }
  auto start = std::chrono::steady_clock::now();
  auto result = st->session->Query(st->current, q.value());
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  PrintRelation(result.value());
  if (st->timing) {
    std::printf("[at %s, %s, %lld us]\n", st->current.c_str(),
                StrategyName(st->session->options().strategy),
                static_cast<long long>(elapsed));
  }
}

}  // namespace

int main() {
  ShellState state;
  std::printf("hql shell — hypothetical queries (\\help for commands)\n");
  std::string line;
  for (;;) {
    std::printf("hql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t");
    line = line.substr(b, e - b + 1);
    if (line == "\\quit" || line == "\\q") break;
    if (line[0] == '\\') {
      HandleCommand(&state, line);
    } else {
      HandleQuery(&state, line);
    }
  }
  std::printf("bye\n");
  return 0;
}
