// hql_shell: an interactive REPL over the hql library.
//
//   $ ./examples/hql_shell
//   hql> \schema emp 2
//   hql> \gen emp 1000 500
//   hql> gamma[1; count(0)](emp) when {del(emp, sigma[$0 < 100](emp))}
//   ...
//
// Commands:
//   \schema NAME ARITY      declare a relation
//   \load NAME (v,..) ...   insert literal rows
//   \gen NAME ROWS DOMAIN   fill with random int rows (col 0 in [0,DOMAIN))
//   \apply UPDATE           commit an update to the real state
//   \strategy NAME          direct | lazy | filter1 | filter2 | filter3 |
//                           hybrid (default hybrid)
//   \columnar on|off        vectorized columnar kernels for large flat
//                           bases (default off); \analyze shows the
//                           columnar-select / columnar-join spans
//   \incremental on|off     patch cached results under small scenario
//                           edits instead of recomputing (default off);
//                           \analyze shows the incremental-patch span and
//                           the patched/propagated/fallback counters
//   \explain QUERY          show the lazy rewrite and the hybrid plan
//   \analyze QUERY          EXPLAIN ANALYZE: run the query traced and show
//                           estimates vs actuals plus per-operator spans
//   \db                     print the whole database
//   \time on|off            toggle per-query timing
//   \help, \quit
// Anything else is parsed as an HQL query and evaluated.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ast/metrics.h"
#include "ast/typecheck.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "eval/direct.h"
#include "eval/memo.h"
#include "eval/simd.h"
#include "hql/ra_rewrite.h"
#include "hql/reduce.h"
#include "opt/explain.h"
#include "opt/session.h"
#include "opt/planner.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "storage/io.h"
#include "workload/generators.h"

namespace {

using namespace hql;  // NOLINT

struct ShellState {
  Schema schema;
  Database db{Schema()};
  Strategy strategy = Strategy::kHybrid;
  ColumnarMode columnar = ColumnarMode::kOff;
  IncrementalMode incremental = IncrementalMode::kOff;
  bool timing = true;
  Rng rng{20260704};
  // Session-level subplan cache: repeated (sub)queries against an unchanged
  // database are served from memory; any \apply changes the content
  // fingerprint, so stale entries are never reachable. \explain shows the
  // counters.
  MemoCache memo;
  // Session-level incremental store (\incremental on): retains the latest
  // execution of each plan so a re-ask after a small \apply is patched
  // rather than recomputed.
  IncrementalCache incremental_cache;
  // Session-level execution context: every query run from this shell
  // charges here (installed for the lifetime of main), so \explain reports
  // this shell's accumulated counters rather than process-wide state.
  ExecContext exec;
  // Active what-if session (\whatif ... \endwhatif). Reset whenever the
  // real database changes, since it materializes a snapshot of the state.
  std::unique_ptr<HypotheticalSession> whatif;
};

void PrintRelation(const Relation& r, size_t limit = 20) {
  size_t shown = 0;
  for (const Tuple& t : r) {
    if (shown++ >= limit) {
      std::printf("  ... (%zu more)\n", r.size() - limit);
      break;
    }
    std::printf("  %s\n", TupleToString(t).c_str());
  }
  std::printf("(%zu tuple%s)\n", r.size(), r.size() == 1 ? "" : "s");
}

bool ParseStrategy(const std::string& name, Strategy* out) {
  for (Strategy s : {Strategy::kDirect, Strategy::kLazy, Strategy::kFilter1,
                     Strategy::kFilter2, Strategy::kFilter3,
                     Strategy::kHybrid}) {
    if (name == StrategyName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

void Help() {
  std::printf(
      "commands:\n"
      "  \\schema NAME ARITY      declare a relation\n"
      "  \\load NAME (v,..) ...   insert literal rows\n"
      "  \\gen NAME ROWS DOMAIN   fill with random rows\n"
      "  \\apply UPDATE           commit an update\n"
      "  \\strategy NAME          direct|lazy|filter1|filter2|filter3|hybrid\n"
      "  \\columnar on|off        vectorized kernels for large flat bases\n"
      "  \\incremental on|off     patch cached results under small edits\n"
      "  \\explain QUERY          show rewrites and plan\n"
      "  \\analyze QUERY          run traced: estimates vs actuals + spans\n"
      "  \\db                     print the database\n"
      "  \\save FILE  \\open FILE  persist / restore the database\n"
      "  \\whatif STATE           open a what-if session (queries run in\n"
      "                          the hypothetical state); \\endwhatif\n"
      "  \\time on|off            toggle timing\n"
      "  \\help  \\quit\n"
      "anything else: an HQL query, e.g.\n"
      "  sigma[$0 > 3](R) when {ins(R, S); del(S, R)}\n");
}

void HandleCommand(ShellState* st, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "\\help") {
    Help();
  } else if (cmd == "\\schema") {
    std::string name;
    size_t arity = 0;
    in >> name >> arity;
    if (name.empty() || arity == 0) {
      std::printf("usage: \\schema NAME ARITY\n");
      return;
    }
    Status st2 = st->schema.AddRelation(name, arity);
    if (!st2.ok()) {
      std::printf("error: %s\n", st2.ToString().c_str());
      return;
    }
    st->whatif.reset();
    st->db = Database(st->schema);  // reset to empty over the new schema
    std::printf("ok: %s/%zu (database reset)\n", name.c_str(), arity);
  } else if (cmd == "\\gen") {
    std::string name;
    size_t rows = 0;
    int64_t domain = 0;
    in >> name >> rows >> domain;
    auto arity = st->schema.ArityOf(name);
    if (!arity.ok() || rows == 0 || domain <= 0) {
      std::printf("usage: \\gen NAME ROWS DOMAIN (declared relation)\n");
      return;
    }
    st->whatif.reset();
    Status set = st->db.Set(
        name, GenRelation(&st->rng, rows, arity.value(), domain, domain));
    std::printf("%s\n", set.ok() ? "ok" : set.ToString().c_str());
  } else if (cmd == "\\load") {
    std::string name;
    in >> name;
    std::string rest;
    std::getline(in, rest);
    // Reuse the query parser: rows form a union of singletons.
    std::istringstream rows(rest);
    std::string tok;
    std::vector<std::string> tuples;
    std::string cur;
    for (char c : rest) {
      cur.push_back(c);
      if (c == ')') {
        tuples.push_back(cur);
        cur.clear();
      }
    }
    if (tuples.empty()) {
      std::printf("usage: \\load NAME (v, ..) (v, ..) ...\n");
      return;
    }
    auto base = st->db.Get(name);
    if (!base.ok()) {
      std::printf("error: %s\n", base.status().ToString().c_str());
      return;
    }
    Relation rel = base.value();
    for (const std::string& text : tuples) {
      auto q = ParseQuery("{" + text + "}");
      if (!q.ok() || q.value()->kind() != QueryKind::kSingleton ||
          q.value()->tuple().size() != rel.arity()) {
        std::printf("bad tuple: %s\n", text.c_str());
        return;
      }
      rel.Insert(q.value()->tuple());
    }
    Status set = st->db.Set(name, std::move(rel));
    std::printf("%s\n", set.ok() ? "ok" : set.ToString().c_str());
  } else if (cmd == "\\apply") {
    std::string rest;
    std::getline(in, rest);
    auto u = ParseUpdate(rest);
    if (!u.ok()) {
      std::printf("parse error: %s\n", u.status().ToString().c_str());
      return;
    }
    Status check = CheckUpdate(u.value(), st->schema);
    if (!check.ok()) {
      std::printf("type error: %s\n", check.ToString().c_str());
      return;
    }
    auto next = ExecUpdate(u.value(), st->db);
    if (!next.ok()) {
      std::printf("error: %s\n", next.status().ToString().c_str());
      return;
    }
    st->whatif.reset();
    st->db = std::move(next).value();
    std::printf("ok\n");
  } else if (cmd == "\\strategy") {
    std::string name;
    in >> name;
    if (!ParseStrategy(name, &st->strategy)) {
      std::printf("unknown strategy '%s'\n", name.c_str());
      return;
    }
    std::printf("strategy = %s\n", StrategyName(st->strategy));
  } else if (cmd == "\\columnar") {
    std::string mode;
    in >> mode;
    if (mode != "on" && mode != "off") {
      std::printf("usage: \\columnar on|off\n");
      return;
    }
    st->columnar = mode == "on" ? ColumnarMode::kAuto : ColumnarMode::kOff;
    std::printf("columnar = %s (simd: %s)\n", ColumnarModeName(st->columnar),
                SimdIsaName());
  } else if (cmd == "\\incremental") {
    std::string mode;
    in >> mode;
    if (mode != "on" && mode != "off") {
      std::printf("usage: \\incremental on|off\n");
      return;
    }
    st->incremental =
        mode == "on" ? IncrementalMode::kAuto : IncrementalMode::kOff;
    std::printf("incremental = %s\n", IncrementalModeName(st->incremental));
  } else if (cmd == "\\explain") {
    std::string rest;
    std::getline(in, rest);
    auto q = ParseQuery(rest);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    StatsCatalog stats = StatsCatalog::FromDatabase(st->db);
    auto report = Explain(q.value(), st->schema, stats, &st->memo);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatExplain(report.value()).c_str());
  } else if (cmd == "\\analyze") {
    std::string rest;
    std::getline(in, rest);
    auto q = ParseQuery(rest);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    AnalyzeOptions options;
    options.strategy = st->strategy;
    options.planner.memo = &st->memo;
    options.planner.columnar_mode = st->columnar;
    options.planner.incremental_mode = st->incremental;
    options.planner.incremental_cache = &st->incremental_cache;
    auto report = ExplainAnalyze(q.value(), st->db, st->schema, options);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatExplainAnalyze(report.value()).c_str());
  } else if (cmd == "\\save") {
    std::string path;
    in >> path;
    Status saved = SaveDatabase(st->db, path);
    std::printf("%s\n", saved.ok() ? "ok" : saved.ToString().c_str());
  } else if (cmd == "\\open") {
    std::string path;
    in >> path;
    auto loaded = LoadDatabase(path);
    if (!loaded.ok()) {
      std::printf("error: %s\n", loaded.status().ToString().c_str());
      return;
    }
    st->whatif.reset();
    st->schema = loaded.value().schema();
    st->db = std::move(loaded).value();
    std::printf("ok (%zu relations)\n", st->schema.NumRelations());
  } else if (cmd == "\\whatif") {
    std::string rest;
    std::getline(in, rest);
    auto state_expr = ParseHypo(rest);
    if (!state_expr.ok()) {
      std::printf("parse error: %s\n",
                  state_expr.status().ToString().c_str());
      return;
    }
    Status check = CheckHypo(state_expr.value(), st->schema);
    if (!check.ok()) {
      std::printf("type error: %s\n", check.ToString().c_str());
      return;
    }
    auto session =
        HypotheticalSession::Create(state_expr.value(), st->db, st->schema);
    if (!session.ok()) {
      std::printf("error: %s\n", session.status().ToString().c_str());
      return;
    }
    st->whatif = std::make_unique<HypotheticalSession>(
        std::move(session).value());
    std::printf("what-if session open (%s, %llu materialized tuples); "
                "queries now run hypothetically. \\endwhatif to close.\n",
                st->whatif->uses_delta() ? "delta" : "xsub",
                static_cast<unsigned long long>(
                    st->whatif->materialized_tuples()));
  } else if (cmd == "\\endwhatif") {
    st->whatif.reset();
    std::printf("what-if session closed; back to the real state.\n");
  } else if (cmd == "\\db") {
    std::printf("%s", st->db.ToString().c_str());
  } else if (cmd == "\\time") {
    std::string mode;
    in >> mode;
    st->timing = (mode != "off");
    std::printf("timing %s\n", st->timing ? "on" : "off");
  } else {
    std::printf("unknown command %s (try \\help)\n", cmd.c_str());
  }
}

void HandleQuery(ShellState* st, const std::string& line) {
  auto q = ParseQuery(line);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return;
  }
  auto arity = InferQueryArity(q.value(), st->schema);
  if (!arity.ok()) {
    std::printf("type error: %s\n", arity.status().ToString().c_str());
    return;
  }
  auto start = std::chrono::steady_clock::now();
  PlannerOptions options;
  options.memo = &st->memo;
  options.columnar_mode = st->columnar;
  options.incremental_mode = st->incremental;
  options.incremental_cache = &st->incremental_cache;
  auto result =
      st->whatif != nullptr
          ? st->whatif->Evaluate(q.value())
          : Execute(q.value(), st->db, st->schema, st->strategy, options);
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  PrintRelation(result.value());
  if (st->timing) {
    std::printf("[%s, %lld us]\n",
                st->whatif != nullptr ? "whatif-session"
                                      : StrategyName(st->strategy),
                static_cast<long long>(elapsed));
  }
}

}  // namespace

int main() {
  ShellState state;
  // All shell work charges the shell's own context, not the process
  // default — the \explain counters are this session's.
  ExecContextScope exec_scope(&state.exec);
  std::printf("hql shell — hypothetical queries (\\help for commands)\n");
  std::string line;
  for (;;) {
    std::printf("hql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t");
    line = line.substr(b, e - b + 1);
    if (line == "\\quit" || line == "\\q") break;
    if (line[0] == '\\') {
      HandleCommand(&state, line);
    } else {
      HandleQuery(&state, line);
    }
  }
  std::printf("bye\n");
  return 0;
}
